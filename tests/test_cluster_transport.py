"""Cluster plumbing: frame protocol, result assembly, rendezvous routing.

These are the deterministic, socket-pair-level tests of the pieces the
multi-host scheduler is built from; the end-to-end behaviour (real worker
subprocesses, failover) lives in ``test_cluster_scheduler.py``.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster.assembly import SddmmAssembly, SpmmAssembly
from repro.cluster.errors import AssemblyError
from repro.cluster.head import rendezvous_rank
from repro.cluster.transport import (
    MAGIC,
    ConnectionClosedError,
    TransportError,
    recv_message,
    send_message,
)


def _pair():
    a, b = socket.socketpair()
    a.settimeout(10.0)
    b.settimeout(10.0)
    return a, b


# ----------------------------------------------------------------- transport
def test_roundtrip_preserves_header_and_arrays():
    a, b = _pair()
    arrays = [
        np.arange(12, dtype=np.int64).reshape(3, 4),
        np.random.default_rng(0).standard_normal((5, 2, 3)).astype(np.float32),
        np.array([], dtype=np.int32),
    ]
    header = {"type": "task", "op": "spmm", "lo": 3, "content_key": "abc"}
    sent_bytes = send_message(a, header, arrays)
    got_header, got_arrays, recv_bytes = recv_message(b)
    assert sent_bytes == recv_bytes
    assert got_header["type"] == "task" and got_header["lo"] == 3
    assert got_header["content_key"] == "abc"
    assert len(got_arrays) == 3
    for sent, got in zip(arrays, got_arrays):
        assert got.dtype == sent.dtype and got.shape == sent.shape
        np.testing.assert_array_equal(got, sent)
    # Received arrays are writable (they back in-place kernel inputs).
    got_arrays[0][0, 0] = 99
    a.close(), b.close()


def test_roundtrip_without_arrays():
    a, b = _pair()
    send_message(a, {"type": "ping"})
    header, arrays, _ = recv_message(b)
    assert header["type"] == "ping" and arrays == []
    a.close(), b.close()


def test_multiple_frames_on_one_stream():
    a, b = _pair()
    for i in range(5):
        send_message(a, {"type": "task", "i": i}, [np.full((2, 2), i, np.float32)])
    for i in range(5):
        header, arrays, _ = recv_message(b)
        assert header["i"] == i
        np.testing.assert_array_equal(arrays[0], np.full((2, 2), i, np.float32))
    a.close(), b.close()


def test_noncontiguous_array_roundtrips():
    a, b = _pair()
    base = np.arange(24, dtype=np.float32).reshape(4, 6)
    sliced = base[:, ::2]  # non-contiguous view
    send_message(a, {"type": "task"}, [sliced])
    _, arrays, _ = recv_message(b)
    np.testing.assert_array_equal(arrays[0], sliced)
    a.close(), b.close()


def test_bad_magic_rejected():
    a, b = _pair()
    a.sendall(b"XXXX" + bytes(20))
    with pytest.raises(TransportError):
        recv_message(b)
    a.close(), b.close()


def test_clean_eof_at_frame_boundary_is_connection_closed():
    a, b = _pair()
    a.close()
    with pytest.raises(ConnectionClosedError):
        recv_message(b)
    b.close()


def test_mid_frame_eof_is_transport_error():
    a, b = _pair()
    # A valid prefix announcing a 100-byte header, then death.
    a.sendall(struct.Struct("!4sBBI").pack(MAGIC, 1, 0, 100))
    a.close()
    with pytest.raises(TransportError):
        recv_message(b)
    b.close()


def test_buffer_length_must_match_descriptor():
    a, b = _pair()

    def sender():
        # Hand-build a frame whose buffer is shorter than dtype/shape imply.
        import json

        header = json.dumps(
            {"type": "task", "arrays": [{"dtype": "<f4", "shape": [4]}]}
        ).encode()
        a.sendall(struct.Struct("!4sBBI").pack(MAGIC, 1, 1, len(header)))
        a.sendall(header)
        a.sendall(struct.Struct("!Q").pack(8))  # 8 bytes, but shape says 16
        a.sendall(bytes(8))

    t = threading.Thread(target=sender)
    t.start()
    with pytest.raises(TransportError):
        recv_message(b)
    t.join()
    a.close(), b.close()


# ------------------------------------------------------------------ assembly
def test_spmm_assembly_places_and_clips_rows():
    asm = SpmmAssembly(n_rows=10, n_dense=3, num_shards=2)
    asm.add(0, 0, np.ones((4, 3), np.float32))
    # Tail shard overruns n_rows by 2: clipped like the shm scatter.
    asm.add(1, 4, np.full((8, 3), 2.0, np.float32))
    out = asm.result()
    np.testing.assert_array_equal(out[:4], 1.0)
    np.testing.assert_array_equal(out[4:], 2.0)


def test_spmm_assembly_rejects_overlap_duplicate_and_missing():
    asm = SpmmAssembly(n_rows=8, n_dense=2, num_shards=3)
    asm.add(0, 0, np.ones((4, 2), np.float32))
    with pytest.raises(AssemblyError):  # overlapping rows
        asm.add(1, 2, np.ones((2, 2), np.float32))
    with pytest.raises(AssemblyError):  # duplicate shard id
        asm.add(0, 4, np.ones((2, 2), np.float32))
    with pytest.raises(AssemblyError):  # unknown shard id
        asm.add(7, 6, np.ones((2, 2), np.float32))
    asm2 = SpmmAssembly(n_rows=8, n_dense=2, num_shards=2)
    asm2.add(0, 0, np.ones((4, 2), np.float32))
    with pytest.raises(AssemblyError):  # shard 1 never arrived
        asm2.result()


def test_sddmm_assembly_scatters_disjoint_vectors():
    asm = SddmmAssembly(out_shape=(6, 8), num_shards=2)
    asm.add(0, np.array([0, 2]), np.full((2, 8), 1.0, np.float32))
    asm.add(1, np.array([1, 5]), np.full((2, 8), 2.0, np.float32))
    out = asm.result()
    np.testing.assert_array_equal(out[[0, 2]], 1.0)
    np.testing.assert_array_equal(out[[1, 5]], 2.0)
    np.testing.assert_array_equal(out[[3, 4]], 0.0)


def test_sddmm_assembly_rejects_overlap_and_range():
    asm = SddmmAssembly(out_shape=(6, 4), num_shards=2)
    asm.add(0, np.array([0, 1]), np.ones((2, 4), np.float32))
    with pytest.raises(AssemblyError):  # vector 1 written twice
        asm.add(1, np.array([1, 3]), np.ones((2, 4), np.float32))
    asm2 = SddmmAssembly(out_shape=(6, 4), num_shards=1)
    with pytest.raises(AssemblyError):  # out-of-range scatter index
        asm2.add(0, np.array([6]), np.ones((1, 4), np.float32))


# ---------------------------------------------------------------- rendezvous
def test_rendezvous_is_deterministic_and_total():
    hosts = [f"host-{i}" for i in range(4)]
    rank1 = rendezvous_rank("some-content-key", hosts)
    rank2 = rendezvous_rank("some-content-key", list(reversed(hosts)))
    assert rank1 == rank2  # input order is irrelevant
    assert sorted(rank1) == sorted(hosts)  # a total order over the hosts


def test_rendezvous_spreads_keys_roughly_evenly():
    hosts = [f"host-{i}" for i in range(4)]
    counts = {h: 0 for h in hosts}
    for k in range(2000):
        counts[rendezvous_rank(f"key-{k}", hosts)[0]] += 1
    for h, n in counts.items():
        assert 350 <= n <= 650, f"{h} got {n}/2000 keys — far from uniform"


def test_rendezvous_removal_only_moves_the_dead_hosts_keys():
    hosts = [f"host-{i}" for i in range(4)]
    survivors = [h for h in hosts if h != "host-2"]
    moved = same = 0
    for k in range(500):
        key = f"key-{k}"
        before = rendezvous_rank(key, hosts)[0]
        after = rendezvous_rank(key, survivors)[0]
        if before == "host-2":
            moved += 1
        else:
            assert after == before  # survivors keep their keys
            same += 1
    assert moved > 0 and same > 0
