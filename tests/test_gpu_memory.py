"""Tests for the global-memory transaction (coalescing) model."""

import numpy as np
import pytest

from repro.gpu.memory import (
    MAX_TRANSACTION_BYTES,
    MemoryTransactionModel,
    TransactionReport,
    WarpAccess,
    addresses_for_elements,
    simulate_warp_load,
    transactions_for_tile_load,
)


def test_fully_coalesced_warp_load_is_one_128_byte_transaction():
    # 32 threads x 4 bytes, consecutive addresses -> one 128 B transaction.
    report = simulate_warp_load([i * 4 for i in range(32)], 4)
    assert report.num_transactions == 1
    assert report.transaction_sizes == (128,)
    assert report.bytes_moved == 128
    assert report.useful_bytes == 128
    assert report.efficiency == 1.0


def test_half_empty_sector_wastes_half_the_transaction():
    # 8 threads x 2 bytes = 16 useful bytes still needs a full 32 B transaction.
    report = simulate_warp_load([i * 2 for i in range(8)], 2)
    assert report.num_transactions == 1
    assert report.transaction_sizes == (32,)
    assert report.useful_bytes == 16
    assert report.wasted_bytes == 16
    assert report.efficiency == 0.5


def test_strided_access_generates_one_transaction_per_sector():
    # 32 threads, 4 bytes each, 128-byte stride: every access in its own sector.
    report = simulate_warp_load([i * 128 for i in range(32)], 4)
    assert report.num_transactions == 32
    assert all(size == 32 for size in report.transaction_sizes)
    assert report.efficiency == pytest.approx(4 / 32)


def test_contiguous_sectors_merge_up_to_128_bytes():
    # 64 consecutive 4-byte accesses span 256 bytes -> two 128-byte transactions.
    model = MemoryTransactionModel()
    report = model.coalesce(WarpAccess(tuple(i * 4 for i in range(64)), 4))
    assert report.transaction_sizes == (128, 128)


def test_empty_access_produces_no_transactions():
    report = simulate_warp_load([], 4)
    assert report.num_transactions == 0
    assert report.bytes_moved == 0
    assert report.efficiency == 1.0


def test_unaligned_access_spans_two_sectors():
    # A 4-byte access at address 30 crosses the 32-byte boundary.
    report = simulate_warp_load([30], 4)
    assert report.num_transactions == 1
    assert report.transaction_sizes == (64,)


def test_warp_access_validation():
    with pytest.raises(ValueError):
        WarpAccess((0, 4), 0)
    with pytest.raises(ValueError):
        WarpAccess((-4,), 4)


def test_model_rejects_bad_configuration():
    with pytest.raises(ValueError):
        MemoryTransactionModel(sector_bytes=32, max_transaction_bytes=100)


def test_coalesce_many_does_not_merge_across_instructions():
    model = MemoryTransactionModel()
    # Two separate 16-byte half-sector accesses to the same sector would merge
    # if issued together, but they are separate instructions.
    a1 = WarpAccess(tuple(range(0, 16, 2)), 2)
    a2 = WarpAccess(tuple(range(16, 32, 2)), 2)
    report = model.coalesce_many([a1, a2])
    assert report.num_transactions == 2
    assert report.useful_bytes == 32


def test_transactions_for_tile_load_counts_rows_independently():
    # 8 rows of 32 bytes each, far apart in memory -> 8 transactions.
    report = transactions_for_tile_load(
        row_indices=list(range(8)), row_bytes=32, row_stride_bytes=1 << 16
    )
    assert report.num_transactions == 8
    assert report.useful_bytes == 8 * 32


def test_transactions_for_tile_load_half_rows_waste_bandwidth():
    # 16-byte row segments still cost one 32-byte transaction each.
    report = transactions_for_tile_load(
        row_indices=list(range(8)), row_bytes=16, row_stride_bytes=1 << 16
    )
    assert report.num_transactions == 8
    assert report.bytes_moved == 8 * 32
    assert report.useful_bytes == 8 * 16


def test_addresses_for_elements_row_major():
    rows = np.array([0, 1])
    cols = np.array([2, 3])
    addrs = addresses_for_elements(rows, cols, row_stride_bytes=100, element_bytes=4, base_address=1000)
    np.testing.assert_array_equal(addrs, [1000 + 0 * 100 + 8, 1000 + 100 + 12])


def test_transaction_report_properties():
    report = TransactionReport(transaction_sizes=(32, 64), useful_bytes=48)
    assert report.num_transactions == 2
    assert report.bytes_moved == 96
    assert report.wasted_bytes == 48
    assert 0 < report.efficiency <= 1
    assert MAX_TRANSACTION_BYTES == 128
