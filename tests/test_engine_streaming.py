"""Memory-bounded streaming parity of the batched execution engine.

The contract: for every ``block_chunk`` (including pathological values),
``max_intermediate_bytes`` budget and ``workers`` count, the streamed engine
produces values identical to the one-shot batched run within FP32 round-off
(bit-identical for SDDMM, whose output blocks are independent) and *exactly*
the same ``CostCounter`` state — chunking is an execution detail the cost
model never sees.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.core.api import sddmm, spmm
from repro.formats.mebcrs import MEBCRSMatrix
from repro.kernels.common import FlashSparseConfig
from repro.kernels.engine import resolve_block_chunk, spmm_batched
from repro.kernels.sddmm_flash import sddmm_flash_execute
from repro.kernels.spmm_flash import spmm_flash_execute
from repro.kernels.spmm_tcu16 import spmm_tcu16_execute

#: The ISSUE's chunk grid: one block, a prime that straddles window
#: boundaries, an exact multiple of typical window block counts, and a
#: value larger than any test matrix's block count.
CHUNKS = (1, 7, 16, 10_000)
WORKERS = (1, 4)


def _fmt_and_operands(seed=4, n=33):
    csr = random_csr(300, 280, 0.05, seed=seed)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((280, n))
    a = rng.standard_normal((300, n))
    return csr, fmt, a, b


@pytest.mark.parametrize("block_chunk", CHUNKS)
@pytest.mark.parametrize("workers", WORKERS)
def test_spmm_chunked_matches_one_shot(block_chunk, workers):
    csr, fmt, _, b = _fmt_and_operands()
    base = spmm_flash_execute(fmt, b, FlashSparseConfig(precision="fp16"))
    cfg = FlashSparseConfig(precision="fp16", block_chunk=block_chunk, workers=workers)
    res = spmm_flash_execute(fmt, b, cfg)
    np.testing.assert_allclose(res.values, base.values, atol=1e-4, rtol=1e-5)
    assert res.counter.as_dict() == base.counter.as_dict()
    assert res.meta["engine"] == "batched"


@pytest.mark.parametrize("block_chunk", CHUNKS)
@pytest.mark.parametrize("workers", WORKERS)
def test_sddmm_chunked_is_bit_identical(block_chunk, workers):
    """SDDMM blocks are independent: streaming must be bit-exact."""
    csr, fmt, a, b = _fmt_and_operands()
    base = sddmm_flash_execute(fmt, a, b, FlashSparseConfig(precision="fp16"))
    cfg = FlashSparseConfig(precision="fp16", block_chunk=block_chunk, workers=workers)
    res = sddmm_flash_execute(fmt, a, b, cfg)
    np.testing.assert_array_equal(res.output.vector_values, base.output.vector_values)
    assert res.counter.as_dict() == base.counter.as_dict()


@pytest.mark.parametrize("workers", WORKERS)
def test_spmm_tcu16_chunked_parity(workers):
    csr = random_csr(200, 190, 0.06, seed=9)
    b = np.random.default_rng(9).standard_normal((190, 17))
    base = spmm_tcu16_execute(csr, b, FlashSparseConfig(precision="tf32", swap_and_transpose=False))
    cfg = FlashSparseConfig(
        precision="tf32", swap_and_transpose=False, block_chunk=3, workers=workers
    )
    res = spmm_tcu16_execute(csr, b, cfg)
    np.testing.assert_allclose(res.values, base.values, atol=1e-4, rtol=1e-5)
    assert res.counter.as_dict() == base.counter.as_dict()


def test_max_intermediate_bytes_budget_streams_and_agrees():
    csr, fmt, _, b = _fmt_and_operands()
    base = spmm_flash_execute(fmt, b, FlashSparseConfig(precision="fp16"))
    cfg = FlashSparseConfig(precision="fp16", max_intermediate_bytes=40_000)
    res = spmm_flash_execute(fmt, b, cfg)
    np.testing.assert_allclose(res.values, base.values, atol=1e-4, rtol=1e-5)
    assert res.counter.as_dict() == base.counter.as_dict()
    # The derived chunk honours the budget: chunk * bytes_per_block <= budget
    # (with the one-block floor when the budget is below a single block).
    v, group, n = fmt.vector_size, fmt.k, b.shape[1]
    bytes_per_block = (v + group) * n * 4
    chunk = resolve_block_chunk(fmt.num_tc_blocks, bytes_per_block, None, 40_000)
    assert 1 <= chunk < fmt.num_tc_blocks
    assert chunk * bytes_per_block <= 40_000


def test_resolve_block_chunk_precedence_and_floors():
    assert resolve_block_chunk(100, 1000, None, None) == 100  # one-shot
    assert resolve_block_chunk(100, 1000, 7, 5) == 7  # explicit chunk wins
    assert resolve_block_chunk(100, 1000, None, 5) == 1  # floored at one block
    assert resolve_block_chunk(100, 1000, None, 3500) == 3
    assert resolve_block_chunk(0, 1000, None, None) == 1  # degenerate batch
    # The byte budget bounds the *run*, not each thread: K workers hold K
    # chunks concurrently, so the per-chunk share shrinks by K.
    assert resolve_block_chunk(100, 1000, None, 8000, workers=4) == 2
    assert resolve_block_chunk(100, 1000, None, 8000, workers=1) == 8


def test_workers_only_sharding_matches_one_shot():
    """workers > 1 with no chunk knob still shards (chunk = n_blocks)."""
    csr, fmt, _, b = _fmt_and_operands(seed=11)
    base = spmm_flash_execute(fmt, b, FlashSparseConfig(precision="fp16"))
    res = spmm_flash_execute(fmt, b, FlashSparseConfig(precision="fp16", workers=4))
    np.testing.assert_allclose(res.values, base.values, atol=1e-4, rtol=1e-5)
    assert res.counter.as_dict() == base.counter.as_dict()


def test_streaming_handles_empty_and_degenerate_matrices():
    empty = MEBCRSMatrix.from_csr(
        random_csr(24, 18, 0.0, ensure_nonempty=False, seed=1), precision="fp16"
    )
    b = np.ones((18, 5))
    cfg = FlashSparseConfig(precision="fp16", block_chunk=1, workers=4)
    res = spmm_flash_execute(empty, b, cfg)
    assert not res.values.any()

    single = random_csr(11, 9, 0.0, ensure_nonempty=True, seed=1)  # one nonzero
    res = spmm_flash_execute(single, np.ones((9, 3)), cfg)
    base = spmm_flash_execute(single, np.ones((9, 3)), FlashSparseConfig(precision="fp16"))
    np.testing.assert_array_equal(res.values, base.values)


def test_api_level_streaming_knobs():
    csr, _, a, b = _fmt_and_operands(seed=21)
    base = spmm(csr, b)
    res = spmm(csr, b, block_chunk=5, workers=2)
    np.testing.assert_allclose(res.values, base.values, atol=1e-4, rtol=1e-5)
    assert res.counter.as_dict() == base.counter.as_dict()

    sbase = sddmm(csr, a, b)
    sres = sddmm(csr, a, b, max_intermediate_bytes=30_000, workers=2)
    np.testing.assert_array_equal(
        sres.output.vector_values, sbase.output.vector_values
    )
    assert sres.counter.as_dict() == sbase.counter.as_dict()


def test_streaming_knob_validation():
    with pytest.raises(ValueError):
        FlashSparseConfig(block_chunk=0)
    with pytest.raises(ValueError):
        FlashSparseConfig(max_intermediate_bytes=0)
    with pytest.raises(ValueError):
        FlashSparseConfig(workers=0)


def test_spmm_batched_streaming_direct_call():
    """Engine-level call with every knob combined (chunk + budget + workers)."""
    csr, fmt, _, b = _fmt_and_operands(seed=31)
    b_q = np.asarray(b, dtype=np.float32)
    from repro.precision.types import Precision

    base = spmm_batched(fmt, b_q, Precision.FP16)
    streamed = spmm_batched(
        fmt, b_q, Precision.FP16, block_chunk=2, max_intermediate_bytes=999, workers=3
    )
    np.testing.assert_allclose(streamed, base, atol=1e-4, rtol=1e-5)
