"""Tests for the redundancy statistics (Figure 1, Table 2, Figure 12 formulas)."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.stats import (
    dense_tile_cols,
    mma_count_sddmm,
    mma_count_spmm,
    sddmm_data_access_bytes,
    sddmm_vectors_per_output_block,
    spmm_data_access_bytes,
    vector_stats,
)
from repro.formats.windows import partition_windows

from helpers import random_csr


def test_dense_tile_cols():
    # 16x1 -> each MMA covers 8 dense columns; 8x1 (swap) -> 16 columns.
    assert dense_tile_cols(16) == 8
    assert dense_tile_cols(8) == 16
    with pytest.raises(ValueError):
        dense_tile_cols(4)


def test_vector_stats_from_csr_and_partition(medium_csr):
    stats_csr = vector_stats(medium_csr, 8)
    stats_part = vector_stats(partition_windows(medium_csr, 8))
    assert stats_csr == stats_part
    assert stats_csr.nnz == medium_csr.nnz
    assert stats_csr.stored_elements == stats_csr.num_nonzero_vectors * 8
    assert 0 < stats_csr.vector_density <= 1
    assert stats_csr.fill_ratio == pytest.approx(stats_csr.zero_fill / stats_csr.nnz)


def test_vector_stats_requires_vector_size_for_csr(medium_csr):
    with pytest.raises(ValueError):
        vector_stats(medium_csr)


def test_zero_fill_reduction_8_vs_16(medium_csr):
    """Table 2: the 8x1 partition roughly halves the zero fill on sparse data."""
    s8 = vector_stats(medium_csr, 8)
    s16 = vector_stats(medium_csr, 16)
    assert s8.zero_fill <= s16.zero_fill
    assert s8.num_nonzero_vectors >= s16.num_nonzero_vectors


def test_figure2_example_mma_counts():
    """The worked example of Figures 2 and 6: 4 MMAs at 16x1 vs 2 MMAs at 8x1.

    The example matrix has 16 rows and nonzero columns spread such that the
    16x1 partition yields 11 nonzero vectors (2 TC blocks) while the 8x1
    partition yields two windows whose vectors fit into one 8x8 block each.
    The dense matrix has N = 16 columns.
    """
    rng = np.random.default_rng(0)
    dense = np.zeros((16, 19))
    # Window 0 (rows 0-7): 8 distinct nonzero columns.
    cols0 = [0, 3, 6, 9, 11, 14, 15, 16]
    for i, c in enumerate(cols0):
        dense[i % 8, c] = 1.0
    # Window 1 (rows 8-15): 8 distinct nonzero columns.
    cols1 = [2, 5, 8, 10, 12, 13, 17, 18]
    for i, c in enumerate(cols1):
        dense[8 + (i % 8), c] = 1.0
    csr = CSRMatrix.from_dense(dense)

    mma_8 = mma_count_spmm(csr, k=8, n_dense=16, vector_size=8)
    mma_16 = mma_count_spmm(csr, k=8, n_dense=16, vector_size=16)
    assert mma_8 == 2
    assert mma_16 == 4


def test_mma_count_spmm_formula(medium_csr):
    part8 = partition_windows(medium_csr, 8)
    part16 = partition_windows(medium_csr, 16)
    n = 128
    assert mma_count_spmm(part8, k=8, n_dense=n) == part8.num_tc_blocks(8) * (n // 16)
    assert mma_count_spmm(part16, k=8, n_dense=n) == part16.num_tc_blocks(8) * (n // 8)
    # Passing the CSR directly requires the vector size.
    with pytest.raises(ValueError):
        mma_count_spmm(medium_csr, k=8, n_dense=n)


def test_8x1_reduces_mma_count(medium_csr, skewed_csr):
    """Figure 1: the 8x1 vector size reduces SpMM MMA invocations (~40% on graphs)."""
    for csr in (medium_csr, skewed_csr):
        m8 = mma_count_spmm(csr, k=8, n_dense=128, vector_size=8)
        m16 = mma_count_spmm(csr, k=8, n_dense=128, vector_size=16)
        assert m8 < m16


def test_spmm_data_access_formula_matches_figure():
    """Figure 2 / 6: per-MMA data volume is (v*k + k*tile) elements."""
    csr = random_csr(64, 64, 0.1, seed=2)
    part = partition_windows(csr, 8)
    n = 32
    mmas = mma_count_spmm(part, k=8, n_dense=n)
    expected = mmas * (8 * 8 + 8 * 16) * 2
    assert spmm_data_access_bytes(part, k=8, n_dense=n, precision="fp16") == expected

    part16 = partition_windows(csr, 16)
    mmas16 = mma_count_spmm(part16, k=8, n_dense=n)
    expected16 = mmas16 * (16 * 8 + 8 * 8) * 2
    assert spmm_data_access_bytes(part16, k=8, n_dense=n, precision="fp16") == expected16


def test_spmm_data_access_8x1_lower_than_16x1(medium_csr):
    """Figure 12 (a): the 8x1 granularity reduces SpMM data access cost."""
    cost8 = spmm_data_access_bytes(medium_csr, k=8, n_dense=128, precision="fp16", vector_size=8)
    cost16 = spmm_data_access_bytes(medium_csr, k=8, n_dense=128, precision="fp16", vector_size=16)
    assert cost8 < cost16


def test_spmm_data_access_include_output(medium_csr):
    base = spmm_data_access_bytes(medium_csr, k=8, n_dense=64, vector_size=8)
    with_out = spmm_data_access_bytes(medium_csr, k=8, n_dense=64, vector_size=8, include_output=True)
    assert with_out > base


def test_sddmm_vectors_per_output_block():
    assert sddmm_vectors_per_output_block(8) == 16
    assert sddmm_vectors_per_output_block(16) == 8


def test_mma_count_sddmm(medium_csr):
    part8 = partition_windows(medium_csr, 8)
    part16 = partition_windows(medium_csr, 16)
    k_dense = 32
    m8 = mma_count_sddmm(part8, mma_k=8, k_dense=k_dense)
    m16 = mma_count_sddmm(part16, mma_k=8, k_dense=k_dense)
    counts8 = part8.vectors_per_window
    expected8 = int(((counts8 + 15) // 16).sum()) * 4
    assert m8 == expected8
    assert m8 < m16 * 2  # sanity: same order of magnitude
    with pytest.raises(ValueError):
        mma_count_sddmm(medium_csr, mma_k=8, k_dense=k_dense)


def test_sddmm_data_access_8x1_lower_than_16x1(medium_csr):
    """Figure 12 (b): the 8x1 granularity reduces SDDMM data access cost."""
    c8 = sddmm_data_access_bytes(medium_csr, mma_k=8, k_dense=32, precision="fp16", vector_size=8)
    c16 = sddmm_data_access_bytes(medium_csr, mma_k=8, k_dense=32, precision="fp16", vector_size=16)
    assert c8 < c16


def test_sddmm_data_access_include_output(medium_csr):
    base = sddmm_data_access_bytes(medium_csr, mma_k=8, k_dense=32, vector_size=8)
    with_out = sddmm_data_access_bytes(medium_csr, mma_k=8, k_dense=32, vector_size=8, include_output=True)
    assert with_out > base


def test_tf32_data_access_doubles_element_size(medium_csr):
    fp16 = spmm_data_access_bytes(medium_csr, k=8, n_dense=64, precision="fp16", vector_size=8)
    tf32 = spmm_data_access_bytes(medium_csr, k=8, n_dense=64, precision="tf32", vector_size=8)
    assert tf32 == 2 * fp16


# ---------------------------------------------------------------------------
# Block-width histogram (the serving planner's input, rebased on repro.ops)
# ---------------------------------------------------------------------------
def test_block_width_histogram_matches_partition(medium_csr):
    from repro.formats.stats import block_width_histogram

    part = partition_windows(medium_csr, 8)
    hist = block_width_histogram(part, 8)
    widths, _, first_block = part.block_widths(8)
    assert hist.num_blocks == widths.shape[0]
    assert hist.num_windows == part.num_windows
    np.testing.assert_array_equal(hist.width_counts, np.bincount(widths, minlength=9))
    np.testing.assert_array_equal(hist.blocks_per_window, np.diff(first_block))
    assert hist.full_blocks + hist.residue_blocks == hist.num_blocks
    assert hist.total_vectors == part.num_nonzero_vectors
    assert hist.max_blocks_in_window == int(np.diff(first_block).max())
    # Per-window aggregates agree with a plain per-window loop.
    for w in range(part.num_windows):
        seg = widths[first_block[w] : first_block[w + 1]]
        if seg.size:
            assert hist.mean_width_per_window[w] == pytest.approx(seg.mean())
            assert hist.min_width_per_window[w] == seg.min()
        else:
            assert hist.mean_width_per_window[w] == 0.0
            assert hist.min_width_per_window[w] == 0


def test_block_width_histogram_from_csr_and_validation(medium_csr):
    from repro.formats.stats import block_width_histogram

    hist = block_width_histogram(medium_csr, 8, vector_size=8)
    from_part = block_width_histogram(partition_windows(medium_csr, 8), 8)
    assert hist.num_blocks == from_part.num_blocks
    np.testing.assert_array_equal(hist.width_counts, from_part.width_counts)
    np.testing.assert_array_equal(hist.blocks_per_window, from_part.blocks_per_window)
    with pytest.raises(ValueError):
        block_width_histogram(medium_csr, 8)  # vector_size required for CSR
    with pytest.raises(ValueError):
        block_width_histogram(partition_windows(medium_csr, 8), 0)
    with pytest.raises(ValueError):
        block_width_histogram(partition_windows(medium_csr, 8), 8, vector_size=16)
