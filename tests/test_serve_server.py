"""Serving frontend: futures, same-matrix batching, metrics, parity.

The acceptance contract: a ``Server`` with ``workers=4`` resolves every
request with values bit-identical to a direct single-process
``engine="batched"`` call and with exactly the same ``CostCounter`` — even
when the server coalesced the request into a shared engine pass with other
same-matrix requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.core.api import sddmm, spmm
from repro.formats.cache import clear_format_cache
from repro.formats.csr import CSRMatrix
from repro.serve import Server

TIMEOUT = 120  # generous: CI runners fork slowly under load


def _twin(csr: CSRMatrix) -> CSRMatrix:
    """A structurally equal but distinct CSR object (a fresh deserialisation,
    as every real request payload would be)."""
    return CSRMatrix(csr.indptr.copy(), csr.indices.copy(), csr.data.copy(), csr.shape)


@pytest.fixture(scope="module")
def workload():
    csr = random_csr(300, 280, 0.05, seed=4)
    rng = np.random.default_rng(4)
    bs = [rng.standard_normal((280, n)) for n in (33, 17, 8, 33)]
    a = rng.standard_normal((300, 24))
    bk = rng.standard_normal((280, 24))
    return csr, bs, a, bk


@pytest.fixture(scope="module")
def server():
    with Server(device="rtx4090", workers=4, retries=1) as srv:
        yield srv


def test_server_spmm_bit_identical_and_counter_parity(server, workload):
    csr, bs, _, _ = workload
    futures = [server.submit_spmm(_twin(csr), b) for b in bs]
    results = [f.result(TIMEOUT) for f in futures]
    for b, res in zip(bs, results):
        base = spmm(csr, b)
        np.testing.assert_array_equal(res.values, base.values)
        assert res.counter.as_dict() == base.counter.as_dict()
        assert res.meta["engine"] == "serve"


def test_server_sddmm_bit_identical_and_counter_parity(server, workload):
    csr, _, a, bk = workload
    res = server.submit_sddmm(_twin(csr), a, bk).result(TIMEOUT)
    base = sddmm(csr, a, bk)
    np.testing.assert_array_equal(res.output.vector_values, base.output.vector_values)
    assert res.counter.as_dict() == base.counter.as_dict()
    scaled = server.submit_sddmm(_twin(csr), a, bk, scale_by_mask=True).result(TIMEOUT)
    sbase = sddmm(csr, a, bk, scale_by_mask=True)
    np.testing.assert_array_equal(
        scaled.output.vector_values, sbase.output.vector_values
    )


def test_server_randomized_parity_suite(server):
    """Randomized shapes and widths through the 4-worker server, exact."""
    for seed in (31, 32, 33, 34):
        rng = np.random.default_rng(seed)
        rows, cols = int(rng.integers(60, 350)), int(rng.integers(60, 350))
        csr = random_csr(rows, cols, 0.06, seed=seed)
        b = rng.standard_normal((cols, int(rng.integers(1, 40))))
        res = server.submit_spmm(_twin(csr), b).result(TIMEOUT)
        base = spmm(csr, b)
        np.testing.assert_array_equal(res.values, base.values)
        assert res.counter.as_dict() == base.counter.as_dict()
        k = int(rng.integers(1, 32))
        a2 = rng.standard_normal((rows, k))
        b2 = rng.standard_normal((cols, k))
        sres = server.submit_sddmm(_twin(csr), a2, b2).result(TIMEOUT)
        sbase = sddmm(csr, a2, b2)
        np.testing.assert_array_equal(
            sres.output.vector_values, sbase.output.vector_values
        )
        assert sres.counter.as_dict() == sbase.counter.as_dict()


def test_same_matrix_requests_coalesce_into_one_pass(workload):
    """The grouping logic itself, exercised directly: one batch of
    same-content requests becomes one engine pass whose split results are
    bit-identical to solo runs."""
    csr, bs, _, _ = workload
    with Server(workers=1) as srv:
        from repro.serve.server import ServeRequest

        reqs = []
        for b in bs:
            twin = _twin(csr)
            fut = srv.submit_spmm(twin, b)  # normal path for metrics…
            fut.result(TIMEOUT)
            reqs.append(
                ServeRequest(op="spmm", csr=twin, key=twin.content_key(), b=b)
            )
        groups = srv._group(reqs)
        # All four requests share content and operand height: one group.
        assert len(groups) == 1 and len(groups[0]) == len(bs)
        # Mixed ops split; max_batch caps group size.
        reqs2 = reqs + [
            ServeRequest(op="sddmm", csr=csr, key=csr.content_key(), b=bs[0])
        ]
        assert len(srv._group(reqs2)) == 2
        srv.max_batch = 2
        assert all(len(g) <= 2 for g in srv._group(reqs))


def test_forced_batching_is_bit_identical(workload):
    """Pause dispatch deterministically: enqueue while the loop is busy, so
    the drain picks all requests up as one batch."""
    csr, bs, _, _ = workload
    with Server(workers=1) as srv:
        # Occupy the dispatcher with a slow request built from a big-enough
        # matrix, then flood the queue with same-matrix requests.
        big = random_csr(800, 800, 0.05, seed=99)
        rngb = np.random.default_rng(99)
        slow = srv.submit_spmm(big, rngb.standard_normal((800, 64)))
        futures = [srv.submit_spmm(_twin(csr), b) for b in bs]
        slow.result(TIMEOUT)
        results = [f.result(TIMEOUT) for f in futures]
        for b, res in zip(bs, results):
            base = spmm(csr, b)
            np.testing.assert_array_equal(res.values, base.values)
        snap = srv.snapshot()
        assert snap.requests_completed == len(bs) + 1
        # The flood coalesced: fewer passes than requests.
        assert snap.batches_dispatched < snap.requests_completed
        assert snap.requests_coalesced >= 2


def test_metrics_latency_queue_and_cache_counters(workload):
    csr, bs, a, bk = workload
    clear_format_cache()
    with Server(workers=1) as srv:
        for _ in range(3):
            srv.submit_spmm(_twin(csr), bs[0]).result(TIMEOUT)
        srv.submit_sddmm(_twin(csr), a, bk).result(TIMEOUT)
        snap = srv.snapshot()
    assert snap.requests_submitted == 4
    assert snap.requests_completed == 4
    assert snap.requests_failed == 0
    assert snap.in_flight == 0
    assert snap.queue_depth == 0
    assert snap.latency_p50_s > 0.0
    assert snap.latency_p95_s >= snap.latency_p50_s
    assert snap.latency_p99_s >= snap.latency_p95_s
    # The serving path keys by content: the first request translates, the
    # rest hit (identity aliases or content hits).
    assert snap.cache.misses == 1
    assert snap.cache.hits >= 3
    assert snap.cache.hit_rate > 0.5
    assert snap.meta["workers"] == 1


def test_submit_validates_shapes_and_close_rejects():
    csr = random_csr(64, 60, 0.1, seed=8)
    srv = Server(workers=1)
    with pytest.raises(ValueError):
        srv.submit_spmm(csr, np.ones((61, 4)))
    with pytest.raises(ValueError):
        srv.submit_sddmm(csr, np.ones((64, 4)), np.ones((60, 5)))  # K mismatch
    srv.close()
    with pytest.raises(RuntimeError):
        srv.submit_spmm(csr, np.ones((60, 4)))
    srv.close()  # idempotent


def test_top_level_factory_not_shadowed_by_subpackage():
    """``repro.start_server`` must survive ``repro.serve`` submodule imports
    (a same-named ``repro.serve`` function would be rebound to the package
    module on first import — the reason the factory has a distinct name)."""
    import repro
    import repro.serve.server  # noqa: F401 — binds repro.serve to the module

    assert callable(repro.start_server)
    with repro.start_server(workers=1) as srv:
        csr = random_csr(32, 32, 0.1, seed=1)
        b = np.ones((32, 2))
        res = srv.submit_spmm(csr, b).result(TIMEOUT)
        np.testing.assert_array_equal(res.values, spmm(csr, b).values)


def test_close_drains_queued_requests(workload):
    csr, bs, _, _ = workload
    srv = Server(workers=1)
    futures = [srv.submit_spmm(_twin(csr), b) for b in bs]
    srv.close()  # must resolve everything already queued
    for b, f in zip(bs, futures):
        np.testing.assert_array_equal(f.result(5).values, spmm(csr, b).values)
