"""Layer programs: validation, wire round trips, composed-execution helpers.

The program representation is what every fused executor consumes, so its
validation must reject malformed pipelines at submit time (not inside a
worker process) and its canonical ``(scale, scale_by_mask)`` form must be
stable across wire round trips.  The shard-alignment property test pins the
invariant the whole fusion rests on: window-aligned shards never split a
softmax row segment.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.engine import layer_softmax_mapping, window_aligned_ranges
from repro.precision.types import Precision, quantize
from repro.serve.program import (
    LayerProgram,
    LayerStep,
    ProgramError,
    attention_csr,
    gather_edge_values,
)

# ------------------------------------------------------------- validation
def test_attention_layer_constructor_builds_canonical_pipeline():
    program = LayerProgram.attention_layer(scale=0.5, scale_by_mask=True)
    assert [s.op for s in program.steps] == ["sddmm", "scale", "edge_softmax", "spmm"]
    assert program.canonical() == (0.5, True)
    assert program.operand_names() == ("a", "b", "x")


def test_scaleless_program_canonicalises_to_none():
    assert LayerProgram.attention_layer().canonical() == (None, False)


def test_consecutive_scales_fold_in_float32():
    program = LayerProgram(
        steps=(
            LayerStep("sddmm", {"a": "a", "b": "b"}),
            LayerStep("scale", {"value": 0.3}),
            LayerStep("scale", {"value": 7.0}),
            LayerStep("edge_softmax", {}),
            LayerStep("spmm", {"x": "x"}),
        )
    )
    scale, by_mask = program.canonical()
    assert scale == float(np.float32(np.float32(0.3) * np.float32(7.0)))
    assert by_mask is False


@pytest.mark.parametrize(
    "steps, match",
    [
        ((), "at least one step"),
        ((LayerStep("spmm", {"x": "x"}),), "must start with 'sddmm'"),
        (
            (LayerStep("sddmm", {}), LayerStep("edge_softmax", {})),
            "must end with 'spmm'",
        ),
        (
            (
                LayerStep("sddmm", {}),
                LayerStep("spmm", {"x": "x"}),
                LayerStep("edge_softmax", {}),
                LayerStep("spmm", {"x": "x"}),
            ),
            "exactly one 'sddmm' and one 'spmm'",
        ),
        (
            (
                LayerStep("sddmm", {}),
                LayerStep("edge_softmax", {}),
                LayerStep("scale", {"value": 1.0}),
                LayerStep("spmm", {"x": "x"}),
            ),
            "immediately precede 'spmm'",
        ),
        (
            (
                LayerStep("sddmm", {}),
                LayerStep("scale", {"value": float("inf")}),
                LayerStep("edge_softmax", {}),
                LayerStep("spmm", {"x": "x"}),
            ),
            "finite 'value'",
        ),
        (
            (
                LayerStep("sddmm", {"a": "nope"}),
                LayerStep("edge_softmax", {}),
                LayerStep("spmm", {"x": "x"}),
            ),
            "unknown panel",
        ),
        (
            (
                LayerStep("sddmm", {}),
                LayerStep("edge_softmax", {}),
                LayerStep("spmm", {"x": "dangling"}),
            ),
            "unknown panel",
        ),
        (
            (
                LayerStep("gather", {}),
                LayerStep("edge_softmax", {}),
                LayerStep("spmm", {"x": "x"}),
            ),
            "unknown step op",
        ),
    ],
)
def test_malformed_programs_fail_at_construction(steps, match):
    with pytest.raises(ProgramError, match=match):
        LayerProgram(steps=steps)


def test_wire_round_trip_preserves_program_and_revalidates():
    program = LayerProgram.attention_layer(scale=1.25, scale_by_mask=True)
    wire = program.to_wire()
    assert all(isinstance(item, dict) for item in wire)
    rebuilt = LayerProgram.from_wire(wire)
    assert rebuilt == program
    assert rebuilt.canonical() == program.canonical()
    # A tampered wire form re-validates on the receiving side.
    broken = [dict(item) for item in wire]
    broken[0]["op"] = "spmm"
    with pytest.raises(ProgramError):
        LayerProgram.from_wire(broken)


# ------------------------------------------------- composed-execution helpers
@pytest.mark.parametrize("fmt_cls", [MEBCRSMatrix, SGT16Matrix])
def test_gather_edge_values_inverts_the_translation_scatter(fmt_cls):
    csr = random_csr(70, 60, 0.07, seed=2)
    fmt = fmt_cls.from_csr(csr, precision="fp16")
    gathered = gather_edge_values(fmt.partition, csr.indptr, fmt.vector_values)
    expected = quantize(csr.data, Precision.FP16).astype(np.float32)
    np.testing.assert_array_equal(gathered, expected)


def test_attention_csr_shares_pattern_and_checks_shape():
    csr = random_csr(30, 28, 0.1, seed=5)
    values = np.arange(csr.nnz, dtype=np.float32)
    rebuilt = attention_csr(csr, values)
    assert rebuilt.shape == csr.shape
    np.testing.assert_array_equal(rebuilt.indptr, csr.indptr)
    np.testing.assert_array_equal(rebuilt.indices, csr.indices)
    np.testing.assert_array_equal(rebuilt.data, values)
    with pytest.raises(ValueError, match="shape"):
        attention_csr(csr, values[:-1])


# --------------------------------------------------- shard-alignment property
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("target", (1, 3, 7, 10_000))
def test_window_aligned_shards_never_split_a_softmax_row_segment(seed, target):
    """The invariant fused serving rests on: shard boundaries are window-
    (hence row-) aligned, so every CSR row segment — a softmax domain —
    lands in exactly one shard, and the shard-local mappings tile the
    entry space gaplessly."""
    rng = np.random.default_rng(seed)
    csr = random_csr(
        int(rng.integers(20, 200)),
        int(rng.integers(20, 200)),
        float(rng.uniform(0.01, 0.15)),
        seed=seed,
    )
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    batch = fmt.blocks_as_arrays()
    ranges = window_aligned_ranges(batch.window_offsets, target)
    v = fmt.partition.vector_size
    n_rows = csr.shape[0]
    covered_entries = 0
    prev_w1 = 0
    for shard in ranges:
        assert shard.w0 == prev_w1  # gapless window coverage, in order
        prev_w1 = shard.w1
        r0 = shard.w0 * v
        r1 = min(shard.w1 * v, n_rows)
        assert r0 % v == 0  # row-aligned: no row (= softmax segment) split
        local_indptr, entry_vector, entry_lane, vec_lo, vec_count = (
            layer_softmax_mapping(
                csr.indptr,
                fmt.partition.nnz_vector_of_entry,
                fmt.partition.window_ptr,
                shard.w0,
                shard.w1,
                v,
                n_rows,
            )
        )
        # The local CSR layout covers exactly the shard's rows and entries.
        assert local_indptr.shape == (r1 - r0 + 1,)
        assert local_indptr[0] == 0
        span = int(local_indptr[-1])
        assert span == int(csr.indptr[r1]) - int(csr.indptr[r0])
        covered_entries += span
        # Every entry addresses a slot inside the shard's own value slab.
        if span:
            assert entry_vector.min() >= 0 and entry_vector.max() < vec_count
            assert entry_lane.min() >= 0 and entry_lane.max() < v
    assert prev_w1 == fmt.num_windows or not ranges
    assert covered_entries == csr.nnz  # entries partitioned, none duplicated
