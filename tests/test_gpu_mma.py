"""Tests for MMA semantics, fragment layouts and the swap-and-transpose identity."""

import numpy as np
import pytest

from repro.gpu.counters import CostCounter
from repro.gpu.mma import (
    MMA_M16N8K4_TF32,
    MMA_M16N8K8_FP16,
    MMA_M16N8K8_TF32,
    MMA_M16N8K16_FP16,
    SUPPORTED_SHAPES,
    WMMA_M16N16K8_TF32,
    default_shape,
    distribute_fragment,
    gather_fragment,
    get_shape,
    layout_a,
    layout_b,
    layout_c,
    mma_execute,
    mma_execute_swapped,
)

ALL_SHAPES = list(SUPPORTED_SHAPES)


def test_table1_shapes_are_supported():
    """Table 1 of the paper lists exactly these WMMA/MMA operand shapes."""
    names = {(s.api, s.precision, s.name) for s in SUPPORTED_SHAPES}
    assert ("wmma", "tf32", "m16n16k8") in names
    assert ("mma", "tf32", "m16n8k4") in names
    assert ("mma", "tf32", "m16n8k8") in names
    assert ("mma", "fp16", "m16n8k8") in names
    assert ("mma", "fp16", "m16n8k16") in names


def test_flashsparse_default_shapes():
    # FlashSparse uses m16n8k4 for TF32 and m16n8k8 for FP16 (Section 2.1).
    assert default_shape("fp16") is MMA_M16N8K8_FP16
    assert default_shape("tf32") is MMA_M16N8K4_TF32
    with pytest.raises(ValueError):
        default_shape("fp64")


def test_get_shape_lookup():
    assert get_shape("m16n8k8", "fp16") is MMA_M16N8K8_FP16
    assert get_shape("m16n16k8", "tf32", api="wmma") is WMMA_M16N16K8_TF32
    with pytest.raises(KeyError):
        get_shape("m8n8k8", "fp16")


def test_shape_properties():
    s = MMA_M16N8K8_FP16
    assert s.a_shape == (16, 8)
    assert s.b_shape == (8, 8)
    assert s.c_shape == (16, 8)
    assert s.flops == 2 * 16 * 8 * 8
    assert s.element_bytes == 2
    assert MMA_M16N8K4_TF32.element_bytes == 4


@pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: f"{s.api}-{s.name}-{s.precision}")
@pytest.mark.parametrize("operand", ["a", "b", "c"])
def test_fragment_layout_is_a_bijection(shape, operand):
    """Every tile element is owned by exactly one (lane, register) slot."""
    layout = {"a": layout_a, "b": layout_b, "c": layout_c}[operand](shape)
    tile_shape = {"a": shape.a_shape, "b": shape.b_shape, "c": shape.c_shape}[operand]
    coords = set(zip(layout.rows.ravel().tolist(), layout.cols.ravel().tolist()))
    assert len(coords) == tile_shape[0] * tile_shape[1]
    assert layout.rows.min() >= 0 and layout.rows.max() == tile_shape[0] - 1
    assert layout.cols.min() >= 0 and layout.cols.max() == tile_shape[1] - 1
    assert layout.rows.shape[0] == 32


@pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: f"{s.api}-{s.name}-{s.precision}")
@pytest.mark.parametrize("operand", ["a", "b", "c"])
def test_distribute_gather_round_trip(shape, operand, rng):
    layout = {"a": layout_a, "b": layout_b, "c": layout_c}[operand](shape)
    tile_shape = {"a": shape.a_shape, "b": shape.b_shape, "c": shape.c_shape}[operand]
    tile = rng.standard_normal(tile_shape)
    fragments = distribute_fragment(tile, layout)
    assert fragments.shape == (32, layout.elements_per_thread)
    rebuilt = gather_fragment(fragments, layout)
    np.testing.assert_array_equal(rebuilt, tile)


def test_distribute_rejects_wrong_shape(rng):
    layout = layout_a(MMA_M16N8K8_FP16)
    with pytest.raises(ValueError):
        distribute_fragment(rng.standard_normal((8, 8)), layout)
    with pytest.raises(ValueError):
        gather_fragment(rng.standard_normal((31, 4)), layout)


def test_m16n8k8_fp16_a_layout_matches_ptx_documentation():
    """Spot-check the documented per-thread ownership (PTX ISA, ref [33])."""
    layout = layout_a(MMA_M16N8K8_FP16)
    # Thread 0 (group 0, tid-in-group 0): a0/a1 at row 0 cols 0/1, a2/a3 at row 8.
    assert layout.coordinates(0) == [(0, 0), (0, 1), (8, 0), (8, 1)]
    # Thread 5 (group 1, tid 1): cols 2/3, rows 1 and 9.
    assert layout.coordinates(5) == [(1, 2), (1, 3), (9, 2), (9, 3)]
    # Thread 31 (group 7, tid 3): cols 6/7, rows 7 and 15.
    assert layout.coordinates(31) == [(7, 6), (7, 7), (15, 6), (15, 7)]


def test_m16n8k8_fp16_b_layout_matches_ptx_documentation():
    layout = layout_b(MMA_M16N8K8_FP16)
    assert layout.coordinates(0) == [(0, 0), (1, 0)]
    assert layout.coordinates(31) == [(6, 7), (7, 7)]


def test_m16n8k4_tf32_layouts():
    a = layout_a(MMA_M16N8K4_TF32)
    b = layout_b(MMA_M16N8K4_TF32)
    assert a.coordinates(0) == [(0, 0), (8, 0)]
    assert b.coordinates(0) == [(0, 0)]
    assert b.coordinates(31) == [(3, 7)]


@pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: f"{s.api}-{s.name}-{s.precision}")
def test_mma_execute_matches_reference(shape, rng):
    a = rng.standard_normal(shape.a_shape)
    b = rng.standard_normal(shape.b_shape)
    c = rng.standard_normal(shape.c_shape).astype(np.float32)
    out = mma_execute(a, b, c, shape)
    ref = a @ b + c
    # Precision emulation (10-bit mantissa) bounds the error.
    np.testing.assert_allclose(out, ref, rtol=5e-2, atol=5e-2)


def test_mma_execute_zero_accumulator(rng):
    shape = MMA_M16N8K8_FP16
    a = rng.standard_normal(shape.a_shape)
    b = rng.standard_normal(shape.b_shape)
    out = mma_execute(a, b, None, shape)
    np.testing.assert_allclose(out, a @ b, rtol=5e-2, atol=5e-2)


def test_mma_execute_charges_counter(rng):
    shape = MMA_M16N8K8_FP16
    counter = CostCounter()
    mma_execute(rng.standard_normal(shape.a_shape), rng.standard_normal(shape.b_shape), None, shape, counter)
    mma_execute(rng.standard_normal(shape.a_shape), rng.standard_normal(shape.b_shape), None, shape, counter)
    assert counter.total_mma == 2
    assert counter.mma_invocations[("m16n8k8", "fp16")] == 2


def test_mma_execute_validates_shapes(rng):
    shape = MMA_M16N8K8_FP16
    good_a = rng.standard_normal(shape.a_shape)
    good_b = rng.standard_normal(shape.b_shape)
    with pytest.raises(ValueError):
        mma_execute(good_a[:8], good_b, None, shape)
    with pytest.raises(ValueError):
        mma_execute(good_a, good_b[:4], None, shape)
    with pytest.raises(ValueError):
        mma_execute(good_a, good_b, np.zeros((4, 4)), shape)


@pytest.mark.parametrize("shape", [MMA_M16N8K8_FP16, MMA_M16N8K4_TF32, MMA_M16N8K8_TF32, MMA_M16N8K16_FP16])
def test_swap_and_transpose_identity(shape, rng):
    """Equation (1): A x B == (B^T x A^T)^T, with A as the n x k sparse tile."""
    sparse_tile = rng.standard_normal((shape.n, shape.k))
    dense_tile = rng.standard_normal((shape.k, shape.m))
    swapped = mma_execute_swapped(sparse_tile, dense_tile, None, shape)
    reference = sparse_tile @ dense_tile
    np.testing.assert_allclose(swapped, reference, rtol=5e-2, atol=5e-2)
    assert swapped.shape == (shape.n, shape.m)


def test_swap_and_transpose_accumulates(rng):
    shape = MMA_M16N8K8_FP16
    sparse_tile = rng.standard_normal((shape.n, shape.k))
    dense_tile = rng.standard_normal((shape.k, shape.m))
    acc = rng.standard_normal((shape.n, shape.m)).astype(np.float32)
    out = mma_execute_swapped(sparse_tile, dense_tile, acc, shape)
    np.testing.assert_allclose(out, sparse_tile @ dense_tile + acc, rtol=5e-2, atol=5e-2)


def test_swap_and_transpose_validates_shapes(rng):
    shape = MMA_M16N8K8_FP16
    with pytest.raises(ValueError):
        mma_execute_swapped(rng.standard_normal((16, 8)), rng.standard_normal((8, 16)), None, shape)
    with pytest.raises(ValueError):
        mma_execute_swapped(rng.standard_normal((8, 8)), rng.standard_normal((16, 8)), None, shape)


def test_swap_and_transpose_counts_one_mma_per_call(rng):
    shape = MMA_M16N8K4_TF32
    counter = CostCounter()
    mma_execute_swapped(
        rng.standard_normal((shape.n, shape.k)),
        rng.standard_normal((shape.k, shape.m)),
        None,
        shape,
        counter,
    )
    assert counter.total_mma == 1
    assert ("m16n8k4", "tf32") in counter.mma_invocations


def test_sparse_operand_vector_length_is_8_with_swap():
    """The point of the swap: the sparse tile's row count equals n = 8, not m = 16."""
    for shape in (MMA_M16N8K8_FP16, MMA_M16N8K4_TF32):
        assert shape.n == 8
        assert shape.m == 16
