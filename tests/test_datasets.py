"""Tests for the synthetic matrix generators, graph stand-ins and collection."""

import numpy as np
import pytest

from repro.datasets.collection import MatrixCase, suitesparse_like_collection
from repro.datasets.generators import (
    banded_matrix,
    block_community_matrix,
    erdos_renyi_matrix,
    power_law_matrix,
    random_rectangular_matrix,
)
from repro.datasets.graphs import TABLE4_GRAPHS, graph_table, list_graphs, make_graph


def test_erdos_renyi_targets_avg_row_length():
    m = erdos_renyi_matrix(2000, avg_row_length=10, seed=0)
    assert m.shape == (2000, 2000)
    assert 6 <= m.avg_row_length <= 10.5  # deduplication loses a few


def test_erdos_renyi_rectangular():
    m = erdos_renyi_matrix(500, 300, avg_row_length=5, seed=1)
    assert m.shape == (500, 300)
    assert m.indices.max() < 300


def test_power_law_matrix_is_skewed():
    m = power_law_matrix(3000, avg_row_length=16, seed=2)
    lengths = m.row_lengths()
    assert lengths.max() > 4 * lengths.mean()
    assert m.nnz > 0


def test_banded_matrix_stays_near_diagonal():
    m = banded_matrix(400, bandwidth=3, seed=3)
    rows = np.repeat(np.arange(400), np.diff(m.indptr).astype(int))
    assert np.abs(rows - m.indices).max() <= 3


def test_block_community_matrix_homophily():
    m = block_community_matrix(1000, n_communities=4, avg_row_length=12, p_in=0.95, seed=4)
    assert m.nnz > 1000
    assert m.shape == (1000, 1000)


def test_block_community_validation():
    with pytest.raises(ValueError):
        block_community_matrix(100, p_in=1.5)


def test_random_rectangular_matrix_nnz_budget():
    m = random_rectangular_matrix(1000, 800, nnz=5000, seed=5)
    assert 0.5 * 5000 <= m.nnz <= 5000
    assert m.shape == (1000, 800)
    with pytest.raises(ValueError):
        random_rectangular_matrix(10, 10, 5, skew=2.0)


def test_random_rectangular_skew_increases_variance():
    uniform = random_rectangular_matrix(2000, 2000, nnz=20_000, skew=0.0, seed=6)
    skewed = random_rectangular_matrix(2000, 2000, nnz=20_000, skew=1.0, seed=6)
    assert skewed.row_lengths().std() > uniform.row_lengths().std()


def test_generators_are_deterministic():
    a = power_law_matrix(500, avg_row_length=8, seed=42)
    b = power_law_matrix(500, avg_row_length=8, seed=42)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.indptr, b.indptr)


def test_generator_input_validation():
    with pytest.raises(ValueError):
        erdos_renyi_matrix(0)
    with pytest.raises(ValueError):
        banded_matrix(10, bandwidth=0)


# ---------------------------------------------------------------------------
# Table 4 graph stand-ins
# ---------------------------------------------------------------------------
def test_table4_contains_paper_datasets():
    names = {spec.name for spec in TABLE4_GRAPHS.values()}
    for expected in ("GitHub", "Reddit", "OGBProducts", "AmazonProducts", "IGB-medium", "Yelp"):
        assert expected in names
    assert len(list_graphs()) >= 15


def test_make_graph_is_deterministic():
    a = make_graph("github")
    b = make_graph("github")
    np.testing.assert_array_equal(a.indices, b.indices)


def test_make_graph_scales_node_count():
    small = make_graph("github", scale=0.05)
    large = make_graph("github", scale=0.2)
    assert large.n_rows > small.n_rows


def test_make_graph_unknown_raises():
    with pytest.raises(KeyError):
        make_graph("not-a-graph")


def test_standins_preserve_avg_row_length_ordering():
    """Reddit must remain by far the densest graph, Ell/Yeast among the sparsest."""
    reddit = make_graph("reddit")
    ell = make_graph("ell")
    assert reddit.avg_row_length > 5 * ell.avg_row_length


def test_graph_table_reports_paper_and_standin_stats():
    rows = graph_table()
    assert len(rows) >= 14
    for row in rows:
        assert row["standin_vertices"] > 0
        assert row["standin_edges"] > 0
        assert row["paper_edges"] >= row["standin_edges"]


# ---------------------------------------------------------------------------
# SuiteSparse-like collection
# ---------------------------------------------------------------------------
def test_collection_size_and_grouping():
    cases = suitesparse_like_collection(num_matrices=12, seed=0, include_graphs=False)
    assert len(cases) == 12
    assert all(isinstance(c, MatrixCase) for c in cases)
    assert {c.size_group for c in cases} <= {"small", "large"}
    families = {c.family for c in cases}
    assert len(families) >= 3


def test_collection_includes_graphs_by_default():
    cases = suitesparse_like_collection(num_matrices=4, seed=0, include_graphs=True)
    graph_cases = [c for c in cases if c.family == "graph"]
    assert len(graph_cases) >= 14


def test_collection_is_deterministic():
    a = suitesparse_like_collection(num_matrices=6, seed=3, include_graphs=False)
    b = suitesparse_like_collection(num_matrices=6, seed=3, include_graphs=False)
    assert [c.name for c in a] == [c.name for c in b]
    assert [c.nnz for c in a] == [c.nnz for c in b]


def test_collection_rejects_negative():
    with pytest.raises(ValueError):
        suitesparse_like_collection(num_matrices=-1)


def test_collection_matrices_are_sparse_and_nonempty():
    for case in suitesparse_like_collection(num_matrices=8, seed=1, include_graphs=False):
        assert case.matrix.nnz > 0
        assert case.matrix.density < 0.5
