"""Tests for the direct vs memory-efficient thread mappings (Figure 7)."""

import numpy as np
import pytest

from repro.kernels.thread_mapping import (
    b_tile_transactions,
    coalesced_mapping,
    direct_mapping,
    get_mapping,
    output_tile_store_transactions,
)
from repro.precision.types import Precision


def test_direct_mapping_fp16_geometry():
    mapping = direct_mapping("fp16")
    assert mapping.k == 8
    assert mapping.dense_cols == 16
    assert mapping.elements_per_thread == 4
    # Thread 0 touches columns 0 and 8 of the tile (Figure 7 b).
    cols_t0 = set(mapping.cols[0].tolist())
    assert cols_t0 == {0, 8}


def test_coalesced_mapping_fp16_geometry():
    mapping = coalesced_mapping("fp16")
    assert mapping.k == 8
    assert mapping.dense_cols == 16
    # Thread 0 touches the adjacent columns 0 and 1 (Figure 7 c).
    cols_t0 = set(mapping.cols[0].tolist())
    assert cols_t0 == {0, 1}


@pytest.mark.parametrize("factory", [direct_mapping, coalesced_mapping])
@pytest.mark.parametrize("precision", ["fp16", "tf32"])
def test_mapping_covers_every_tile_element_once(factory, precision):
    mapping = factory(precision)
    coords = set(zip(mapping.rows.ravel().tolist(), mapping.cols.ravel().tolist()))
    assert len(coords) == mapping.k * mapping.dense_cols


def test_column_perm_is_a_permutation():
    mapping = coalesced_mapping("fp16")
    assert sorted(mapping.column_perm.tolist()) == list(range(16))
    # Direct mapping uses the identity permutation.
    assert direct_mapping("fp16").column_perm.tolist() == list(range(16))


def test_fp16_direct_mapping_needs_16_transactions():
    """Figure 7 (b): 16 32-byte transactions to load the 8x16 FP16 tile."""
    mapping = direct_mapping("fp16")
    report = b_tile_transactions(mapping, row_stride_bytes=1 << 16)
    assert report.num_transactions == 16
    assert report.bytes_moved == 16 * 32
    assert report.useful_bytes == 8 * 16 * 2
    assert report.efficiency == pytest.approx(0.5)


def test_fp16_coalesced_mapping_needs_8_transactions():
    """Figure 7 (c): 8 32-byte transactions — a 50% reduction."""
    mapping = coalesced_mapping("fp16")
    report = b_tile_transactions(mapping, row_stride_bytes=1 << 16)
    assert report.num_transactions == 8
    assert report.bytes_moved == 8 * 32
    assert report.useful_bytes == 8 * 16 * 2
    assert report.efficiency == pytest.approx(1.0)


def test_tf32_mappings_equal_transactions():
    """For TF32 the direct mapping is already fully coalesced."""
    direct = b_tile_transactions(direct_mapping("tf32"), row_stride_bytes=1 << 16)
    coalesced = b_tile_transactions(coalesced_mapping("tf32"), row_stride_bytes=1 << 16)
    assert direct.num_transactions == coalesced.num_transactions
    assert direct.efficiency == pytest.approx(1.0)


def test_residue_block_loads_fewer_rows():
    mapping = coalesced_mapping("fp16")
    full = b_tile_transactions(mapping, row_stride_bytes=1 << 16, row_indices=np.arange(8))
    partial = b_tile_transactions(mapping, row_stride_bytes=1 << 16, row_indices=np.arange(3))
    assert partial.num_transactions < full.num_transactions
    assert partial.useful_bytes == 3 * 16 * 2


def test_get_mapping_dispatch():
    assert get_mapping("fp16", True).name == "coalesced"
    assert get_mapping("fp16", False).name == "direct"
    assert get_mapping(Precision.TF32, True).precision is Precision.TF32


def test_thread_addresses_validation():
    mapping = coalesced_mapping("fp16")
    with pytest.raises(ValueError):
        mapping.thread_addresses(np.zeros(3))  # needs k=8 row addresses


def test_thread_addresses_generate_packed_accesses():
    """The coalesced FP16 mapping reads 2x FP16 as a single 4-byte access."""
    mapping = coalesced_mapping("fp16")
    accesses = mapping.thread_addresses(np.arange(8) * (1 << 12))
    # 4 elements per thread merged into 2 packed accesses.
    assert len(accesses) == 2
    assert all(a.access_bytes == 4 for a in accesses)
    direct = direct_mapping("fp16")
    accesses_direct = direct.thread_addresses(np.arange(8) * (1 << 12))
    assert len(accesses_direct) == 4
    assert all(a.access_bytes == 2 for a in accesses_direct)


def test_output_tile_store_transactions():
    report = output_tile_store_transactions(rows=8, cols=16)
    # 8 rows x 64 bytes fully coalesced -> 8 transactions of 64 bytes.
    assert report.useful_bytes == 8 * 16 * 4
    assert report.bytes_moved == report.useful_bytes
