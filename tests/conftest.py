"""Shared fixtures for the test suite.

Plain helpers live in :mod:`helpers` (importable by test modules without the
``conftest`` module-name collision with ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.formats.csr import CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_csr() -> CSRMatrix:
    """A 40x36 sparse matrix with ~8% density."""
    return random_csr(40, 36, 0.08, seed=3)


@pytest.fixture
def medium_csr() -> CSRMatrix:
    """A 200x180 sparse matrix with ~4% density."""
    return random_csr(200, 180, 0.04, seed=7)


@pytest.fixture
def skewed_csr() -> CSRMatrix:
    """A matrix with a few very long rows (load-imbalance regime)."""
    rng = np.random.default_rng(11)
    rows = []
    cols = []
    n = 128
    for r in range(n):
        length = 64 if r % 37 == 0 else rng.integers(1, 5)
        rows.extend([r] * int(length))
        cols.extend(rng.integers(0, n, size=int(length)).tolist())
    return CSRMatrix.from_coo(np.array(rows), np.array(cols), None, (n, n))
