"""Tests for the roofline performance model and summary helpers."""

import numpy as np
import pytest

from repro.gpu.counters import CostCounter
from repro.gpu.device import H100_PCIE, RTX4090
from repro.perfmodel.model import (
    DEFAULT_PROFILE,
    KernelProfile,
    PerformanceModel,
    estimate_time,
    gflops,
    sddmm_useful_flops,
    spmm_useful_flops,
)
from repro.perfmodel.summary import geometric_mean, speedup_distribution, summarize_by_group


def make_counter(mma=0, fma=0, load_bytes=0, footprint=None, index_ops=0, warps=1000):
    c = CostCounter()
    if mma:
        c.add_mma("m16n8k8", "fp16", mma)
    if fma:
        c.add_cuda_fma(fma)
    if load_bytes:
        c.add_load(32, load_bytes // 32, useful_bytes=load_bytes)
    if footprint is not None:
        c.set_read_footprint(footprint)
    if index_ops:
        c.add_index_ops(index_ops)
    c.add_warps(warps)
    return c


def test_useful_flops_helpers():
    assert spmm_useful_flops(100, 64) == 2 * 100 * 64
    assert sddmm_useful_flops(100, 32) == 2 * 100 * 32


def test_gflops():
    assert gflops(2e9, 1.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        gflops(1, 0.0)


def test_profile_validation():
    with pytest.raises(ValueError):
        KernelProfile(name="bad", tcu_efficiency=0.0)
    with pytest.raises(ValueError):
        KernelProfile(name="bad", memory_efficiency=1.5)
    with pytest.raises(ValueError):
        KernelProfile(name="bad", imbalance_factor=0.5)


def test_estimate_includes_launch_overhead():
    empty = CostCounter()
    est = estimate_time(empty, RTX4090)
    assert est.total_time_s >= RTX4090.kernel_launch_overhead_us * 1e-6
    assert est.bound in ("compute", "memory")


def test_more_mmas_take_longer():
    small = estimate_time(make_counter(mma=1_000), RTX4090)
    large = estimate_time(make_counter(mma=100_000), RTX4090)
    assert large.total_time_s > small.total_time_s
    assert large.tcu_time_s > small.tcu_time_s


def test_memory_bound_kernel_dominated_by_bytes():
    c = make_counter(mma=10, load_bytes=512 * 1024 * 1024, footprint=256 * 1024 * 1024)
    est = estimate_time(c, RTX4090)
    assert est.bound == "memory"
    assert est.memory_time_s > est.tcu_time_s


def test_l2_model_rewards_small_footprints():
    """Same traffic, smaller unique footprint -> shorter memory time."""
    heavy = make_counter(load_bytes=256 * 1024 * 1024, footprint=256 * 1024 * 1024)
    light = make_counter(load_bytes=256 * 1024 * 1024, footprint=8 * 1024 * 1024)
    t_heavy = estimate_time(heavy, RTX4090).memory_time_s
    t_light = estimate_time(light, RTX4090).memory_time_s
    assert t_light < t_heavy


def test_l2_unfriendly_profile_ignores_footprint():
    profile = KernelProfile(name="thrash", l2_friendly=False)
    counter = make_counter(load_bytes=64 * 1024 * 1024, footprint=1 * 1024 * 1024)
    friendly = estimate_time(counter, RTX4090, DEFAULT_PROFILE).memory_time_s
    hostile = estimate_time(counter, RTX4090, profile).memory_time_s
    assert hostile > friendly


def test_index_ops_charged_to_cuda_cores():
    base = estimate_time(make_counter(mma=100), RTX4090).cuda_time_s
    with_checks = estimate_time(make_counter(mma=100, index_ops=10_000_000), RTX4090).cuda_time_s
    assert with_checks > base


def test_imbalance_factor_scales_compute():
    c = make_counter(fma=10_000_000_000)
    balanced = estimate_time(c, RTX4090, KernelProfile(name="bal", imbalance_factor=1.0))
    skewed = estimate_time(c, RTX4090, KernelProfile(name="skew", imbalance_factor=2.0))
    assert skewed.total_time_s > balanced.total_time_s


def test_occupancy_penalty_for_tiny_launches():
    c_few = make_counter(load_bytes=1024 * 1024, footprint=1024 * 1024, warps=4)
    c_many = make_counter(load_bytes=1024 * 1024, footprint=1024 * 1024, warps=100_000)
    t_few = estimate_time(c_few, RTX4090).memory_time_s
    t_many = estimate_time(c_many, RTX4090).memory_time_s
    assert t_few > t_many


def test_devices_differ():
    c = make_counter(mma=1_000_000, load_bytes=64 * 1024 * 1024, footprint=32 * 1024 * 1024)
    t_h100 = estimate_time(c, H100_PCIE).total_time_s
    t_4090 = estimate_time(c, RTX4090).total_time_s
    assert t_h100 != t_4090
    assert t_h100 < t_4090  # higher bandwidth and TCU throughput


def test_extra_launch_overhead():
    slow = KernelProfile(name="framework", extra_launch_us=100.0)
    c = CostCounter()
    assert estimate_time(c, RTX4090, slow).launch_time_s > estimate_time(c, RTX4090).launch_time_s


def test_performance_model_class_matches_function():
    c = make_counter(mma=1234, load_bytes=1 << 20, footprint=1 << 19)
    model = PerformanceModel(RTX4090)
    assert model.estimate(c).total_time_s == estimate_time(c, RTX4090).total_time_s


# ---------------------------------------------------------------------------
# Summary helpers
# ---------------------------------------------------------------------------
def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_speedup_distribution_buckets():
    dist = speedup_distribution([0.5, 1.2, 1.7, 2.5, 8.0])
    assert dist["<1"] == pytest.approx(20.0)
    assert dist["1-1.5"] == pytest.approx(20.0)
    assert dist["1.5-2"] == pytest.approx(20.0)
    assert dist[">=2"] == pytest.approx(40.0)
    assert dist["max"] == pytest.approx(8.0)
    assert dist["geomean"] > 0
    with pytest.raises(ValueError):
        speedup_distribution([])


def test_speedup_distribution_sums_to_100():
    rng = np.random.default_rng(0)
    dist = speedup_distribution(rng.uniform(0.2, 10, 1000))
    assert dist["<1"] + dist["1-1.5"] + dist["1.5-2"] + dist[">=2"] == pytest.approx(100.0)


def test_summarize_by_group():
    groups = {"a": [1.0, 2.0], "b": [3.0, 4.0]}
    out = summarize_by_group(groups)
    assert set(out) == {"a", "b"}
    assert out["b"]["geomean"] > out["a"]["geomean"]
