"""Tests for the generic blocked nonzero-vector format and ME-BCRS / SR-BCRS / SGT."""

import numpy as np
import pytest

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import FLASH_VECTOR_SIZE, MEBCRSMatrix, default_block_k
from repro.formats.sgt16 import SGT16Matrix, SGT_VECTOR_SIZE, default_block_k_16
from repro.formats.srbcrs import SRBCRSMatrix, footprint_reduction
from repro.precision.types import Precision

from helpers import random_csr


# ---------------------------------------------------------------------------
# Generic blocked format
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("vector_size,k", [(8, 8), (8, 4), (16, 8)])
def test_blocked_round_trip_to_dense(small_csr, vector_size, k):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=vector_size, k=k)
    np.testing.assert_allclose(fmt.to_dense(), small_csr.to_dense(), rtol=1e-6)


@pytest.mark.parametrize("vector_size,k", [(8, 8), (16, 8)])
def test_blocked_round_trip_to_csr(medium_csr, vector_size, k):
    fmt = BlockedVectorFormat.from_csr(medium_csr, vector_size=vector_size, k=k)
    back = fmt.to_csr()
    np.testing.assert_allclose(back.to_dense(), medium_csr.to_dense(), rtol=1e-6)
    assert back.nnz == medium_csr.nnz


def test_block_values_and_columns_consistent(small_csr):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=8)
    dense = small_csr.to_dense()
    for w in range(fmt.num_windows):
        row0, row1 = fmt.partition.window_row_range(w)
        for cols, values in fmt.iter_window_blocks(w):
            assert values.shape == (8, cols.shape[0])
            for j, c in enumerate(cols):
                expected = np.zeros(8)
                expected[: row1 - row0] = dense[row0:row1, c]
                np.testing.assert_allclose(values[:, j], expected, rtol=1e-6)


def test_last_block_can_be_narrow(small_csr):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=8)
    narrow_found = False
    for w in range(fmt.num_windows):
        blocks = fmt.window_blocks(w)
        if blocks == 0:
            continue
        last = fmt.block_values(w, blocks - 1)
        assert 1 <= last.shape[1] <= 8
        if last.shape[1] < 8:
            narrow_found = True
    # With 8% density some window should end in a partial block.
    assert narrow_found


def test_block_out_of_range_raises(small_csr):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=8)
    with pytest.raises(IndexError):
        fmt.block_columns(0, fmt.window_blocks(0) + 5)


def test_num_tc_blocks_matches_partition(medium_csr):
    fmt = BlockedVectorFormat.from_csr(medium_csr, vector_size=8, k=4)
    assert fmt.num_tc_blocks == fmt.partition.num_tc_blocks(4)


def test_values_row_major_layout(small_csr):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=8)
    flat = fmt.values_row_major()
    assert flat.shape[0] == fmt.num_nonzero_vectors * 8
    # First block check: the first `width` values are the first row of block 0.
    first_window = next(w for w in range(fmt.num_windows) if fmt.window_blocks(w) > 0)
    block = fmt.block_values(first_window, 0)
    offset = 0
    for w in range(first_window):
        pass
    np.testing.assert_allclose(flat[: block.size], block.reshape(-1), rtol=1e-6)


def test_bad_k_rejected(small_csr):
    with pytest.raises(ValueError):
        BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=0)


def test_zero_fill_matches_partition(small_csr):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=8)
    assert fmt.zero_fill == fmt.partition.zero_fill
    stored = np.count_nonzero(fmt.vector_values == 0)
    assert stored == fmt.zero_fill


def test_row_pointers_and_column_indices_exposed(small_csr):
    fmt = BlockedVectorFormat.from_csr(small_csr, vector_size=8, k=8)
    assert fmt.row_pointers.shape[0] == fmt.num_windows + 1
    assert fmt.column_indices.shape[0] == fmt.num_nonzero_vectors


# ---------------------------------------------------------------------------
# ME-BCRS
# ---------------------------------------------------------------------------
def test_mebcrs_defaults():
    assert FLASH_VECTOR_SIZE == 8
    assert default_block_k("fp16") == 8
    assert default_block_k("tf32") == 4
    assert default_block_k("fp32") == 8


@pytest.mark.parametrize("precision", ["fp16", "tf32"])
def test_mebcrs_from_csr(small_csr, precision):
    fmt = MEBCRSMatrix.from_csr(small_csr, precision=precision)
    assert fmt.vector_size == 8
    assert fmt.k == default_block_k(precision)
    np.testing.assert_allclose(fmt.to_dense(), small_csr.to_dense(), rtol=1e-2, atol=1e-2)


def test_mebcrs_residue_vectors(small_csr):
    fmt = MEBCRSMatrix.from_csr(small_csr, precision="fp16")
    for w in range(fmt.num_windows):
        residue = fmt.residue_vectors(w)
        count = fmt.partition.vectors_per_window[w]
        if count == 0:
            assert residue == 0
        else:
            expected = count % fmt.k or fmt.k
            assert residue == expected


def test_mebcrs_footprint_formula(medium_csr):
    fmt = MEBCRSMatrix.from_csr(medium_csr, precision="fp16")
    expected = (fmt.num_windows + 1) * 4 + fmt.num_nonzero_vectors * 4 + fmt.num_nonzero_vectors * 8 * 2
    assert fmt.memory_footprint_bytes() == expected


# ---------------------------------------------------------------------------
# SR-BCRS
# ---------------------------------------------------------------------------
def test_srbcrs_padding_counts(medium_csr):
    sr = SRBCRSMatrix.from_csr(medium_csr, precision="fp16")
    assert sr.num_padded_vectors == sr.partition.padded_vectors(sr.k)
    assert sr.num_stored_vectors == sr.num_nonzero_vectors + sr.num_padded_vectors
    assert sr.num_stored_vectors % 1 == 0


def test_srbcrs_padded_column_indices_length(medium_csr):
    sr = SRBCRSMatrix.from_csr(medium_csr, precision="fp16")
    padded = sr.padded_column_indices()
    assert padded.shape[0] == sr.num_stored_vectors
    # Each window's stored count is a multiple of k.
    blocks = sr.partition.tc_blocks_per_window(sr.k)
    assert padded.shape[0] == int((blocks * sr.k).sum())


def test_mebcrs_never_larger_than_srbcrs(medium_csr, skewed_csr):
    """The Table 7 invariant: ME-BCRS always saves memory vs SR-BCRS."""
    for csr in (medium_csr, skewed_csr):
        for precision in ("fp16", "tf32"):
            me = MEBCRSMatrix.from_csr(csr, precision=precision)
            sr = SRBCRSMatrix.from_csr(csr, precision=precision)
            assert me.memory_footprint_bytes() <= sr.memory_footprint_bytes()
            reduction = footprint_reduction(me.memory_footprint_bytes(), sr.memory_footprint_bytes())
            assert 0.0 <= reduction < 1.0


def test_footprint_reduction_edge_cases():
    assert footprint_reduction(10, 0) == 0.0
    assert footprint_reduction(50, 100) == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# SGT 16x1
# ---------------------------------------------------------------------------
def test_sgt16_defaults(small_csr):
    assert SGT_VECTOR_SIZE == 16
    assert default_block_k_16("tf32") == 8
    fmt = SGT16Matrix.from_csr(small_csr)
    assert fmt.vector_size == 16
    assert fmt.k == 8
    np.testing.assert_allclose(fmt.to_dense(), small_csr.to_dense(), rtol=1e-2, atol=1e-2)


def test_sgt16_has_fewer_or_equal_vectors_than_mebcrs(medium_csr):
    """A 16-row window merges vectors, so it stores fewer (but longer) vectors."""
    me = MEBCRSMatrix.from_csr(medium_csr, precision="fp16")
    sgt = SGT16Matrix.from_csr(medium_csr, precision="tf32")
    assert sgt.num_nonzero_vectors <= me.num_nonzero_vectors
    # ... but more zero fill (Table 2).
    assert sgt.zero_fill >= me.zero_fill


def test_fp32_blocked_format_allowed_for_format_experiments(small_csr):
    fmt = MEBCRSMatrix.from_csr(small_csr, precision=Precision.FP32)
    assert fmt.value_element_bytes() == 4
