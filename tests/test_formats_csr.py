"""Tests for the CSR container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.csr import CSRMatrix

from helpers import random_csr


def test_from_scipy_round_trip(small_csr):
    dense = small_csr.to_dense()
    again = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(again.to_dense(), dense)


def test_from_dense_drops_zeros():
    dense = np.array([[0.0, 1.0], [2.0, 0.0]])
    csr = CSRMatrix.from_dense(dense)
    assert csr.nnz == 2
    np.testing.assert_allclose(csr.to_dense(), dense)


def test_from_coo_sums_duplicates():
    rows = np.array([0, 0, 1])
    cols = np.array([1, 1, 0])
    vals = np.array([1.0, 2.0, 3.0])
    csr = CSRMatrix.from_coo(rows, cols, vals, (2, 2))
    assert csr.nnz == 2
    assert csr.to_dense()[0, 1] == pytest.approx(3.0)


def test_from_coo_default_values():
    csr = CSRMatrix.from_coo(np.array([0, 1]), np.array([0, 1]), None, (2, 2))
    np.testing.assert_allclose(csr.data, [1.0, 1.0])


def test_properties(small_csr):
    assert small_csr.n_rows == 40
    assert small_csr.n_cols == 36
    assert small_csr.nnz == small_csr.indices.shape[0]
    assert small_csr.avg_row_length == pytest.approx(small_csr.nnz / 40)
    assert 0 < small_csr.density < 1


def test_row_slice(small_csr):
    dense = small_csr.to_dense()
    for r in range(small_csr.n_rows):
        cols, vals = small_csr.row_slice(r)
        row = np.zeros(small_csr.n_cols)
        row[cols] = vals
        np.testing.assert_allclose(row, dense[r])


def test_row_lengths(small_csr):
    lengths = small_csr.row_lengths()
    assert lengths.sum() == small_csr.nnz
    assert lengths.shape == (small_csr.n_rows,)


def test_validation_rejects_bad_indptr():
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 2]), np.array([0], dtype=np.int32), np.array([1.0]), (2, 2))
    with pytest.raises(ValueError):
        CSRMatrix(np.array([1, 1, 1]), np.zeros(0, np.int32), np.zeros(0), (2, 2))
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int32), np.ones(2), (2, 2))


def test_validation_rejects_out_of_range_column():
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 1]), np.array([5], dtype=np.int32), np.array([1.0]), (1, 2))


def test_memory_footprint_counts_all_arrays(small_csr):
    expected = (small_csr.n_rows + 1) * 4 + small_csr.nnz * 4 + small_csr.nnz * 4
    assert small_csr.memory_footprint_bytes() == expected


def test_with_values(small_csr):
    new_vals = np.arange(small_csr.nnz, dtype=np.float32)
    replaced = small_csr.with_values(new_vals)
    np.testing.assert_array_equal(replaced.data, new_vals)
    np.testing.assert_array_equal(replaced.indices, small_csr.indices)
    with pytest.raises(ValueError):
        small_csr.with_values(np.zeros(small_csr.nnz + 1))


def test_to_scipy_matches(small_csr):
    scipy_matrix = small_csr.to_scipy()
    assert isinstance(scipy_matrix, sp.csr_matrix)
    np.testing.assert_allclose(np.asarray(scipy_matrix.todense()), small_csr.to_dense())


def test_empty_matrix():
    csr = CSRMatrix(np.zeros(5, dtype=np.int64), np.zeros(0, np.int32), np.zeros(0), (4, 3))
    assert csr.nnz == 0
    assert csr.avg_row_length == 0.0
    assert csr.density == 0.0
    assert csr.to_dense().shape == (4, 3)


def test_random_csr_helper_density():
    csr = random_csr(64, 64, 0.1, seed=1)
    assert 0 < csr.nnz <= 64 * 64
