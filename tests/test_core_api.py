"""Tests for the public API (repro.core.api)."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro import FlashSparseMatrix, KernelConfig, spmm, sddmm
from repro.core.api import sddmm_cost, spmm_cost
from repro.gpu.device import RTX4090
from repro.precision.types import Precision

from helpers import random_csr


def test_version_exported():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_flashsparse_matrix_constructors(rng):
    scipy_matrix = sp.random(50, 40, density=0.1, format="csr", random_state=0)
    m1 = FlashSparseMatrix.from_scipy(scipy_matrix)
    m2 = FlashSparseMatrix.from_dense(np.asarray(scipy_matrix.todense()))
    m3 = FlashSparseMatrix.from_csr_arrays(
        m1.csr.indptr, m1.csr.indices, m1.csr.data, m1.csr.shape
    )
    assert m1.shape == m2.shape == m3.shape == (50, 40)
    assert m1.nnz == m2.nnz == m3.nnz
    np.testing.assert_allclose(
        np.asarray(m1.to_scipy().todense()), np.asarray(scipy_matrix.todense()), rtol=1e-6
    )


def test_mebcrs_and_sgt16_are_cached():
    m = FlashSparseMatrix.from_scipy(sp.random(64, 64, density=0.1, format="csr", random_state=1))
    a = m.mebcrs("fp16")
    b = m.mebcrs(Precision.FP16)
    assert a is b
    assert m.mebcrs("tf32") is not a
    assert m.sgt16() is m.sgt16()


def test_spmm_accepts_many_input_types(rng):
    scipy_matrix = sp.random(48, 48, density=0.1, format="csr", random_state=2)
    dense_rhs = rng.standard_normal((48, 16))
    ref = scipy_matrix @ dense_rhs
    for source in (
        scipy_matrix,
        FlashSparseMatrix.from_scipy(scipy_matrix),
        np.asarray(scipy_matrix.todense()),
    ):
        result = spmm(source, dense_rhs)
        np.testing.assert_allclose(result.values, ref, rtol=2e-2, atol=2e-2)
    with pytest.raises(TypeError):
        spmm("not a matrix", dense_rhs)


def test_spmm_result_fields(rng):
    csr = random_csr(64, 64, 0.1, seed=3)
    b = rng.standard_normal((64, 32))
    result = spmm(csr, b, device="rtx4090")
    assert result.values.shape == (64, 32)
    assert result.counter.total_mma > 0
    assert result.useful_flops == 2 * csr.nnz * 32
    assert result.estimate is not None
    assert result.estimate.device == RTX4090.name
    assert result.gflops and result.gflops > 0
    assert result.meta["precision"] == "fp16"


def test_spmm_without_device_has_no_estimate(rng):
    csr = random_csr(32, 32, 0.1, seed=4)
    result = spmm(csr, rng.standard_normal((32, 8)))
    assert result.estimate is None
    assert result.gflops is None


def test_spmm_precisions_and_mapping(rng):
    csr = random_csr(64, 64, 0.08, seed=5)
    b = rng.standard_normal((64, 16))
    ref = csr.to_dense() @ b
    for precision in ("fp16", "tf32"):
        for coalesced in (True, False):
            result = spmm(csr, b, precision=precision, coalesced=coalesced)
            np.testing.assert_allclose(result.values, ref, rtol=2e-2, atol=2e-2)


def test_sddmm_api(rng):
    csr = random_csr(48, 40, 0.1, seed=6)
    a = rng.standard_normal((48, 16))
    b = rng.standard_normal((40, 16))
    result = sddmm(csr, a, b, device="h100")
    ref = (a @ b.T) * (csr.to_dense() != 0)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=3e-2, atol=3e-2)
    np.testing.assert_allclose(np.asarray(result.to_scipy().todense()), ref, rtol=3e-2, atol=3e-2)
    assert result.estimate is not None and result.gflops > 0
    assert result.useful_flops == 2 * csr.nnz * 16


def test_sddmm_scale_by_mask(rng):
    csr = random_csr(32, 32, 0.1, seed=7)
    a = rng.standard_normal((32, 8))
    b = rng.standard_normal((32, 8))
    result = sddmm(csr, a, b, scale_by_mask=True)
    ref = (a @ b.T) * csr.to_dense()
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=3e-2, atol=3e-2)


def test_cost_only_entry_points_match_execution(rng):
    csr = random_csr(64, 64, 0.1, seed=8)
    b = rng.standard_normal((64, 32))
    executed = spmm(csr, b, precision="fp16")
    estimated = spmm_cost(csr, 32, precision="fp16")
    assert estimated.as_dict() == executed.counter.as_dict()
    a = rng.standard_normal((64, 16))
    executed_sddmm = sddmm(csr, a, rng.standard_normal((64, 16)))
    estimated_sddmm = sddmm_cost(csr, 16)
    assert estimated_sddmm.total_mma == executed_sddmm.counter.total_mma


def test_kernel_config_alias():
    config = KernelConfig(precision="tf32", coalesced=False)
    assert config.precision is Precision.TF32
    assert config.vector_size == 8


def test_package_docstring_example_runs():
    rng = np.random.default_rng(0)
    a = sp.random(64, 64, density=0.05, format="csr", random_state=0)
    fsm = FlashSparseMatrix.from_scipy(a)
    b = rng.standard_normal((64, 16))
    out = spmm(fsm, b)
    assert np.allclose(out.values, a @ b, atol=1e-2)
