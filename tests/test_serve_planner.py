"""Planner: GPUSpec memory budget → streaming knobs, enforced by tracemalloc.

The contract: the planner replaces the caller-supplied ``block_chunk`` /
``max_intermediate_bytes`` / ``workers`` knobs with values derived from the
device's declared memory capacity and the format's block histogram, the
derived configuration never exceeds the budget (asserted here with
tracemalloc against a deliberately tiny budget), and planned runs produce
the same values and exactly the same cost counters as unplanned runs.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

from helpers import random_csr

from repro.core.api import FlashSparseMatrix, spmm
from repro.formats.mebcrs import MEBCRSMatrix
from repro.gpu.device import RTX4090, GPUSpec
from repro.gpu.memory import MemoryBudget, derive_budget
from repro.kernels.common import FlashSparseConfig
from repro.kernels.engine import spmm_batched, spmm_bytes_per_block
from repro.precision.types import Precision
from repro.serve.planner import plan_sddmm, plan_spmm


def _tiny_device(capacity_bytes: int) -> GPUSpec:
    """An RTX 4090 clone whose memory capacity is shrunk for budget tests."""
    return replace(RTX4090, name="tiny", memory_bytes=int(capacity_bytes))


def test_plan_spmm_derives_all_three_knobs_from_device():
    csr = random_csr(600, 560, 0.05, seed=1)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    # Budget small enough to force chunking: resident + a few chunk slabs.
    resident = plan_spmm(fmt, 64).meta["resident_bytes"]
    plan = plan_spmm(fmt, 64, device=_tiny_device(resident + 2_000_000), workers=2)
    assert plan.op == "spmm"
    assert plan.block_chunk is not None and plan.block_chunk >= 1
    assert plan.max_intermediate_bytes is not None
    assert plan.workers >= 1
    assert plan.num_shards >= 2  # the budget actually split the batch
    assert plan.bytes_per_block == spmm_bytes_per_block(fmt.vector_size, fmt.k, 64)
    # Derivation chain is auditable: budget → workspace → chunk.
    assert plan.budget is not None
    assert plan.max_intermediate_bytes == plan.budget.workspace_bytes
    assert plan.within_budget


def test_plan_is_deterministic_and_one_shot_without_budget():
    csr = random_csr(200, 200, 0.05, seed=2)
    p1 = plan_spmm(csr, 32)
    p2 = plan_spmm(csr, 32)
    assert p1 == p2
    assert p1.block_chunk is None and p1.max_intermediate_bytes is None
    assert p1.meta["one_shot"]


def test_plan_workers_capped_by_shard_count():
    csr = random_csr(40, 40, 0.2, seed=3)  # few windows -> few shards
    plan = plan_spmm(csr, 16, workers=8)
    assert plan.workers <= max(1, plan.num_shards)


def test_plan_rejects_unknown_capacity_and_bad_inputs():
    csr = random_csr(64, 64, 0.1, seed=4)
    with pytest.raises(ValueError):
        plan_spmm(csr, 32, device=_tiny_device(0))
    with pytest.raises(ValueError):
        plan_spmm(csr, 0)
    with pytest.raises(ValueError):
        plan_sddmm(csr, -3)
    with pytest.raises(ValueError):
        plan_spmm(csr, 32, workers=0)


def test_memory_budget_arithmetic():
    budget = MemoryBudget(capacity_bytes=1000, resident_bytes=400, workspace_fraction=0.5)
    assert budget.free_bytes == 600
    assert budget.workspace_bytes == 300
    assert budget.fits
    over = MemoryBudget(capacity_bytes=1000, resident_bytes=1400)
    assert over.free_bytes == 0 and not over.fits
    with pytest.raises(ValueError):
        MemoryBudget(capacity_bytes=0, resident_bytes=0)
    with pytest.raises(ValueError):
        MemoryBudget(capacity_bytes=10, resident_bytes=0, workspace_fraction=1.5)
    with pytest.raises(ValueError):
        derive_budget(_tiny_device(0), 0)
    assert derive_budget(RTX4090, 0).capacity_bytes == RTX4090.memory_bytes


def test_planned_run_matches_unplanned_values_and_counters():
    csr = random_csr(400, 380, 0.05, seed=5)
    rng = np.random.default_rng(5)
    b = rng.standard_normal((380, 48))
    base = spmm(csr, b)
    resident = plan_spmm(csr, 48).meta["resident_bytes"]
    plan = plan_spmm(csr, 48, device=_tiny_device(resident + 3_000_000), workers=1)
    res = spmm(csr, b, plan=plan)
    np.testing.assert_allclose(res.values, base.values, atol=1e-4, rtol=1e-5)
    assert res.counter.as_dict() == base.counter.as_dict()
    # Explicit caller knobs beat the plan.
    res2 = spmm(csr, b, plan=plan, block_chunk=1)
    np.testing.assert_allclose(res2.values, base.values, atol=1e-4, rtol=1e-5)


def test_config_from_plan_and_matrix_integration():
    m = FlashSparseMatrix.from_scipy(random_csr(128, 128, 0.08, seed=6).to_scipy())
    assert m.content_key() == m.csr.content_key()
    plan = m.plan(32, op="spmm", max_intermediate_bytes=50_000)
    config = FlashSparseConfig.from_plan(plan)
    assert config.max_intermediate_bytes == plan.max_intermediate_bytes
    assert config.workers == plan.workers
    assert config.block_chunk == plan.block_chunk
    ref = FlashSparseConfig.from_plan(plan, engine="reference")
    assert ref.engine == "reference"
    sp = m.plan(16, op="sddmm")
    assert sp.op == "sddmm"
    with pytest.raises(ValueError):
        m.plan(16, op="gemm")


def test_planner_budget_enforced_by_tracemalloc():
    """The acceptance gate: a planned run's peak allocation stays within the
    declared budget; an unplanned one-shot run blows far past it."""
    csr = random_csr(2400, 2200, 0.02, seed=7)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    n_dense = 256
    rng = np.random.default_rng(7)
    b_q = rng.standard_normal((2200, n_dense)).astype(np.float32)

    resident = plan_spmm(fmt, n_dense).meta["resident_bytes"]
    device = _tiny_device(resident + 8 * 2**20)  # ~2 MiB workspace at 25%
    plan = plan_spmm(fmt, n_dense, device=device, workers=1)
    assert plan.max_intermediate_bytes <= 2 * 2**20 + 2**18
    config = FlashSparseConfig.from_plan(plan)

    one_shot_bytes = plan.num_blocks * plan.bytes_per_block
    assert one_shot_bytes > 10 * plan.max_intermediate_bytes  # test has teeth

    fmt.blocks_as_arrays()  # exclude the one-time batch packing from the peak
    spmm_batched(fmt, b_q, Precision.FP16, **config.engine_stream_kwargs)  # warm

    tracemalloc.start()
    try:
        tracemalloc.clear_traces()
        spmm_batched(fmt, b_q, Precision.FP16, **config.engine_stream_kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # Engine-side allocations: the output (rows × N × 4) plus the streamed
    # chunk slabs and their reduction temporaries, bounded by the workspace
    # (2× for the scatter temporaries that mirror one chunk's slab).
    out_bytes = csr.n_rows * n_dense * 4
    allowance = 2 * plan.max_intermediate_bytes + out_bytes + 2**20
    assert peak <= allowance, (
        f"planned peak {peak} exceeds budget allowance {allowance} "
        f"(workspace {plan.max_intermediate_bytes})"
    )
    # And the one-shot path could not have fit in that allowance.
    assert one_shot_bytes > allowance
