"""Additional backend and end-to-end coverage for the GNN substrate."""

import numpy as np
import pytest

from repro.gnn.backends import make_backend
from repro.gnn.end_to_end import estimate_epoch_time
from repro.gpu.device import H100_PCIE, RTX4090
from repro.precision.types import Precision

from helpers import random_csr


@pytest.fixture
def adjacency():
    return random_csr(64, 64, 0.1, seed=42)


def test_spmm_backward_gradients_match_dense_reference(adjacency, rng):
    backend = make_backend("dgl", adjacency)
    dense = rng.standard_normal((64, 6)).astype(np.float32)
    grad_out = rng.standard_normal((64, 6)).astype(np.float32)
    grad_values, grad_dense = backend.spmm_backward(None, dense, grad_out)
    assert grad_values is None
    np.testing.assert_allclose(grad_dense, adjacency.to_dense().T @ grad_out, rtol=1e-3, atol=1e-3)


def test_spmm_backward_with_edge_values(adjacency, rng):
    backend = make_backend("dgl", adjacency)
    values = rng.standard_normal(adjacency.nnz).astype(np.float32)
    dense = rng.standard_normal((64, 4)).astype(np.float32)
    grad_out = rng.standard_normal((64, 4)).astype(np.float32)
    grad_values, grad_dense = backend.spmm_backward(values, dense, grad_out)
    rows = np.repeat(np.arange(64), np.diff(adjacency.indptr).astype(int))
    cols = adjacency.indices
    expected_values = np.einsum("ij,ij->i", grad_out[rows], dense[cols])
    np.testing.assert_allclose(grad_values, expected_values, rtol=1e-3, atol=1e-3)
    weighted = adjacency.with_values(values).to_dense()
    np.testing.assert_allclose(grad_dense, weighted.T @ grad_out, rtol=1e-3, atol=1e-3)


def test_sddmm_backward_scatter(adjacency, rng):
    backend = make_backend("dgl", adjacency)
    a = rng.standard_normal((64, 5)).astype(np.float32)
    b = rng.standard_normal((64, 5)).astype(np.float32)
    grad_edges = rng.standard_normal(adjacency.nnz).astype(np.float32)
    grad_a, grad_b = backend.sddmm_backward(a, b, grad_edges)
    weighted = adjacency.with_values(grad_edges).to_dense()
    np.testing.assert_allclose(grad_a, weighted @ b, rtol=1e-3, atol=1e-3)
    np.testing.assert_allclose(grad_b, weighted.T @ a, rtol=1e-3, atol=1e-3)


def test_edge_softmax_handles_empty_rows(rng):
    # A matrix with an empty row must not produce NaNs in the softmax.
    from repro.formats.csr import CSRMatrix

    dense = np.zeros((8, 8))
    dense[0, 1] = 1.0
    dense[2, [0, 3, 5]] = 1.0
    adjacency = CSRMatrix.from_dense(dense)
    backend = make_backend("flashsparse-fp16", adjacency)
    logits = rng.standard_normal(adjacency.nnz).astype(np.float32)
    softmax, cache = backend.edge_softmax_forward(logits)
    assert np.isfinite(softmax).all()
    assert softmax[:1].sum() == pytest.approx(1.0)
    grad = backend.edge_softmax_backward(cache, np.ones_like(softmax))
    assert np.isfinite(grad).all()


def test_precision_quantisation_is_applied(adjacency):
    fp16 = make_backend("flashsparse-fp16", adjacency)
    fp32 = make_backend("dgl", adjacency)
    # A value that FP16 cannot represent exactly.
    dense = np.full((64, 2), 1.0 + 2.0**-12, dtype=np.float64)
    out16 = fp16.spmm_forward(None, dense)
    out32 = fp32.spmm_forward(None, dense)
    assert not np.allclose(out16, out32, atol=0)
    np.testing.assert_allclose(out16, out32, rtol=1e-2)


def test_backend_stats_accumulate(adjacency, rng):
    backend = make_backend("flashsparse-tf32", adjacency)
    dense = rng.standard_normal((64, 4))
    backend.spmm_forward(None, dense)
    backend.sddmm_forward(dense, dense)
    backend.edge_softmax_forward(np.zeros(adjacency.nnz, dtype=np.float32))
    assert backend.stats.spmm_calls == 1
    assert backend.stats.sddmm_calls == 1
    assert backend.stats.edge_softmax_calls == 1


def test_framework_overhead_reflected_in_profiles(adjacency):
    assert make_backend("dgl", adjacency).framework_overhead_us > 0
    assert make_backend("pyg", adjacency).framework_overhead_us > 0
    assert make_backend("flashsparse-fp16", adjacency).framework_overhead_us == 0


@pytest.mark.parametrize("model_kind,hidden", [("gcn", 128), ("agnn", 32)])
def test_epoch_estimates_scale_with_graph_size(model_kind, hidden):
    small = random_csr(256, 256, 0.02, seed=1)
    large = random_csr(2048, 2048, 0.02, seed=2)
    t_small = estimate_epoch_time(model_kind, small, "flashsparse-fp16", RTX4090, hidden=hidden).total_time_s
    t_large = estimate_epoch_time(model_kind, large, "flashsparse-fp16", RTX4090, hidden=hidden).total_time_s
    assert t_large > t_small


def test_epoch_estimates_differ_across_devices(adjacency):
    t_h100 = estimate_epoch_time("gcn", adjacency, "dgl", H100_PCIE, hidden=128).total_time_s
    t_4090 = estimate_epoch_time("gcn", adjacency, "dgl", RTX4090, hidden=128).total_time_s
    assert t_h100 != t_4090


def test_agnn_estimate_includes_sddmm_cost(adjacency):
    gcn = estimate_epoch_time("gcn", adjacency, "flashsparse-fp16", RTX4090, hidden=32)
    agnn = estimate_epoch_time("agnn", adjacency, "flashsparse-fp16", RTX4090, hidden=32)
    # AGNN runs SDDMM on top of SpMM, so its sparse share is larger.
    assert agnn.sparse_time_s > gcn.sparse_time_s


def test_tf32_backend_precision_enum(adjacency):
    backend = make_backend("flashsparse-tf32", adjacency)
    assert backend.precision is Precision.TF32
    assert backend.name == "FlashSparse-TF32"
