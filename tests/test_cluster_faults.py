"""Fault-injection harness unit behaviour + worker malformed-input hardening.

First half: :class:`FaultPlan` / :class:`FaultSocket` over plain
socketpairs — each named fault fires at its scheduled frame, with the
scheduled effect, deterministically under a seed.  Second half (ISSUE
satellite): a worker host fed garbage — truncated frame mid-buffer,
corrupt JSON header, oversized declaration — must drop that connection
and be back at ``accept`` for the next one, with the oversized rejection
counted in its status frames.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.cluster.assembly import SddmmAssembly, SpmmAssembly
from repro.cluster.errors import AssemblyError
from repro.cluster.transport import (
    _BUF_LEN,
    _PREFIX,
    MAGIC,
    VERSION,
    ConnectionClosedError,
    FrameTooLargeError,
    TransportError,
    client_handshake,
    recv_message,
    send_message,
)
from repro.cluster.worker import run_worker
from repro.testing import FaultPlan

TIMEOUT = 30


def _pair():
    a, b = socket.socketpair()
    a.settimeout(TIMEOUT)
    b.settimeout(TIMEOUT)
    return a, b


# ------------------------------------------------------------ FaultSocket
def test_drop_connection_fires_at_the_scheduled_frame():
    plan = FaultPlan(seed=0).drop_connection(nth=2, type="task")
    a, b = _pair()
    wrapped = plan.wrap(a, scope="h0")
    send_message(wrapped, {"type": "task", "n": 1})  # frame 1 passes
    header, _, _ = recv_message(b)
    assert header["n"] == 1
    with pytest.raises(ConnectionClosedError):
        send_message(wrapped, {"type": "task", "n": 2})  # frame 2 drops
    assert plan.fired_kinds() == ["drop_connection"]
    b.close()


def test_frame_type_filter_skips_heartbeat_noise():
    """A schedule aimed at task frames must not advance on pings — frame
    counting is what keeps fault schedules deterministic under heartbeats."""
    plan = FaultPlan(seed=0).drop_connection(nth=1, type="task")
    a, b = _pair()
    wrapped = plan.wrap(a, scope="h0")
    for _ in range(3):
        send_message(wrapped, {"type": "ping"})
        recv_message(b)
    assert plan.fired_kinds() == []
    with pytest.raises(ConnectionClosedError):
        send_message(wrapped, {"type": "task"})
    b.close()


def test_scope_filter_isolates_hosts():
    plan = FaultPlan(seed=0).drop_connection(nth=1, type="task", scope="h1")
    a, b = _pair()
    wrapped = plan.wrap(a, scope="h0")  # different scope: fault never fires
    send_message(wrapped, {"type": "task"})
    recv_message(b)
    assert plan.fired_kinds() == []
    a.close(), b.close()


def test_delay_send_sleeps_the_scheduled_milliseconds():
    plan = FaultPlan(seed=0).delay_send(120, nth=1, type="task")
    a, b = _pair()
    wrapped = plan.wrap(a, scope="h0")
    t0 = time.perf_counter()
    send_message(wrapped, {"type": "task"})
    elapsed = time.perf_counter() - t0
    recv_message(b)
    assert elapsed >= 0.12
    assert plan.fired_kinds() == ["delay_send"]
    a.close(), b.close()


def test_truncate_frame_leaves_peer_with_midframe_eof():
    plan = FaultPlan(seed=0).truncate_frame(nth=1, type="task")
    a, b = _pair()
    wrapped = plan.wrap(a, scope="h0")
    with pytest.raises(ConnectionClosedError):
        send_message(wrapped, {"type": "task", "payload": "x" * 64})
    with pytest.raises(TransportError, match="mid-frame"):
        recv_message(b)
    b.close()


def test_corrupt_header_is_undecodable_and_seeded():
    plan = FaultPlan(seed=42).corrupt_header(nth=1, type="task")
    a, b = _pair()
    wrapped = plan.wrap(a, scope="h0")
    send_message(wrapped, {"type": "task", "payload": "y" * 64})
    with pytest.raises(TransportError, match="undecodable"):
        recv_message(b)
    assert plan.fired_kinds() == ["corrupt_header"]
    # Seeded corruption is replayable.
    assert FaultPlan(seed=42).corruption(4) == FaultPlan(seed=42).corruption(4)
    assert FaultPlan(seed=42).corruption(4) != FaultPlan(seed=43).corruption(4)
    a.close(), b.close()


def test_refuse_connect_budget_and_kill_host_schedule():
    plan = FaultPlan(seed=0).refuse_connect(2, scope="h0").kill_host(step=3, host="h1")
    for _ in range(2):
        with pytest.raises(ConnectionRefusedError):
            plan.check_connect(scope="h0")
    plan.check_connect(scope="h0")  # budget spent: passes
    plan.check_connect(scope="other")  # never matched
    assert plan.actions_at(2) == []
    assert plan.actions_at(3) == [("kill_host", "h1")]
    assert plan.actions_at(9) == []  # one-shot
    assert plan.fired_kinds() == ["refuse_connect", "refuse_connect", "kill_host"]


def test_recv_message_enforces_per_connection_frame_limit():
    a, b = _pair()
    send_message(a, {"type": "task"}, [np.zeros(4096, np.float32)])
    with pytest.raises(FrameTooLargeError, match="max_frame_bytes"):
        recv_message(b, max_frame_bytes=1024)
    a.close(), b.close()


# --------------------------------------------------- assembly duplicates
def test_assembly_suppresses_identical_duplicates_only():
    asm = SpmmAssembly(n_rows=8, n_dense=2, num_shards=2)
    rows = np.ones((4, 2), np.float32)
    asm.add(0, 0, rows)
    asm.add(0, 0, rows.copy())  # speculative duplicate: identical bytes
    assert asm.duplicates_suppressed == 1
    with pytest.raises(AssemblyError, match="differing"):
        asm.add(0, 0, rows * 2)  # same placement, different content
    asm.add(1, 4, rows)
    np.testing.assert_array_equal(asm.result(), 1.0)

    sasm = SddmmAssembly(out_shape=(6, 4), num_shards=1)
    idx, vals = np.array([0, 2]), np.full((2, 4), 3.0, np.float32)
    sasm.add(0, idx, vals)
    sasm.add(0, idx.copy(), vals.copy())
    assert sasm.duplicates_suppressed == 1
    with pytest.raises(AssemblyError, match="differing"):
        sasm.add(0, idx, vals * 2)
    np.testing.assert_array_equal(sasm.result()[[0, 2]], 3.0)


# --------------------------------------- worker malformed-input hardening
@pytest.fixture()
def worker():
    """One worker host in a daemon thread; yields its address."""
    box = {}
    ready = threading.Event()

    def announce(addr):
        box["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=run_worker,
        kwargs={"host": "127.0.0.1", "port": 0, "ready": announce, "max_frame_bytes": 1 << 20},
        daemon=True,
    )
    thread.start()
    assert ready.wait(TIMEOUT), "worker never announced its address"
    yield box["addr"]
    # Clean shutdown so the thread (and its listener) exits.
    conn = _connect(box["addr"])
    send_message(conn, {"type": "shutdown"})
    recv_message(conn)
    conn.close()
    thread.join(TIMEOUT)
    assert not thread.is_alive()


def _connect(address) -> socket.socket:
    """Dial the worker and clear its connection handshake (v2 transport:
    nothing else flows on a fresh stream until the handshake passes)."""
    conn = socket.create_connection(address, timeout=TIMEOUT)
    conn.settimeout(TIMEOUT)
    client_handshake(conn)
    return conn


def _ping(address) -> dict:
    conn = _connect(address)
    send_message(conn, {"type": "ping"})
    header, _, _ = recv_message(conn)
    conn.close()
    assert header["type"] == "pong"
    return header


def test_worker_survives_truncated_frame_mid_buffer(worker):
    conn = _connect(worker)
    header = b'{"type":"task","arrays":[{"dtype":"<f4","shape":[25],"crc32":0}]}'
    conn.sendall(_PREFIX.pack(MAGIC, VERSION, 1, len(header)) + header)
    conn.sendall(_BUF_LEN.pack(100) + b"\x00" * 10)  # 10 of 100 bytes, then gone
    conn.close()
    assert _ping(worker)["type"] == "pong"  # back at accept, cache intact


def test_worker_survives_corrupt_json_header(worker):
    conn = _connect(worker)
    garbage = b"\xff" * 32  # declared as header, not valid UTF-8/JSON
    conn.sendall(_PREFIX.pack(MAGIC, VERSION, 0, len(garbage)) + garbage)
    conn.close()
    assert _ping(worker)["type"] == "pong"


def test_worker_rejects_oversized_declaration_and_keeps_serving(worker):
    conn = _connect(worker)
    # A tiny header followed by a buffer declaring 1 GiB: the worker must
    # refuse *before* allocating and drop the connection.
    header = b'{"type":"task","arrays":[{"dtype":"<f4","shape":[268435456],"crc32":0}]}'
    conn.sendall(_PREFIX.pack(MAGIC, VERSION, 1, len(header)) + header)
    conn.sendall(_BUF_LEN.pack(1 << 30))
    # The worker closes on us rather than reading the (never-sent) payload.
    conn.settimeout(TIMEOUT)
    assert conn.recv(1) == b""
    conn.close()
    status = _ping(worker)
    assert status["frames_oversized"] == 1  # counted in the status frames


def test_worker_fault_wrapper_hook():
    """`run_worker(socket_wrapper=...)` threads a FaultPlan into the
    worker side: a worker-side recv drop resets the head's connection.

    The wrapper sits below the handshake, so the hello the worker reads is
    recv frame 1 on its schedule — the first post-handshake ping is frame 2.
    """
    plan = FaultPlan(seed=9).drop_connection(nth=3, side="recv", scope="w0")
    box = {}
    ready = threading.Event()

    def announce(addr):
        box["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=run_worker,
        kwargs={
            "host": "127.0.0.1",
            "port": 0,
            "ready": announce,
            "socket_wrapper": lambda c: plan.wrap(c, scope="w0"),
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(TIMEOUT)
    conn = _connect(box["addr"])  # handshake hello = worker recv frame 1
    send_message(conn, {"type": "ping"})
    assert recv_message(conn)[0]["type"] == "pong"  # frame 2 served
    # The worker counts its 3rd recv frame and drops before reading it, so
    # our 2nd ping fails on send or on the reply read, depending on timing.
    with pytest.raises((TransportError, OSError)):
        send_message(conn, {"type": "ping"})
        recv_message(conn)
    conn.close()
    assert plan.fired_kinds() == ["drop_connection"]
    # The worker survived its own injected drop and serves the next
    # connection (frame counting continues on the new wrapper).
    conn = _connect(box["addr"])
    send_message(conn, {"type": "shutdown"})
    recv_message(conn)
    conn.close()
    thread.join(TIMEOUT)
    assert not thread.is_alive()
