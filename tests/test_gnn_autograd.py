"""Tests for the autograd engine, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.gnn import autograd as ag
from repro.gnn.autograd import Parameter, Tensor, no_grad
from repro.gnn.backends import make_backend

from helpers import random_csr


def numerical_gradient(func, array, eps=1e-3):
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = func()
        flat[i] = original - eps
        down = func()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build_loss, param, rtol=5e-2, atol=5e-3):
    """Compare autograd gradients with finite differences for one parameter."""
    loss = build_loss()
    loss.backward()
    auto = param.grad.copy()
    param.zero_grad()
    numeric = numerical_gradient(lambda: float(build_loss().data), param.data)
    np.testing.assert_allclose(auto, numeric, rtol=rtol, atol=atol)


def test_tensor_basics(rng):
    t = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    assert t.shape == (3, 4)
    assert t.ndim == 2
    assert t.detach().requires_grad is False
    assert isinstance(Parameter(np.zeros(2)).requires_grad, bool)
    assert Parameter(np.zeros(2)).requires_grad


def test_backward_requires_scalar(rng):
    t = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
    out = ag.mul(t, t)
    with pytest.raises(ValueError):
        out.backward()


def test_no_grad_disables_recording(rng):
    a = Parameter(rng.standard_normal((2, 2)))
    with no_grad():
        out = ag.matmul(a, a)
    assert out.requires_grad is False
    assert out._backward is None


def test_add_mul_gradients(rng):
    a = Parameter(rng.standard_normal((4, 3)))
    b = Parameter(rng.standard_normal((4, 3)))

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.add(ag.mul(a, b), a)), np.zeros(4, dtype=int))

    check_gradient(loss, a)
    a.zero_grad(), b.zero_grad()
    check_gradient(loss, b)


def test_broadcast_add_bias_gradient(rng):
    x = Tensor(rng.standard_normal((5, 3)))
    bias = Parameter(rng.standard_normal(3))

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.add(x, bias)), np.zeros(5, dtype=int))

    check_gradient(loss, bias)


def test_matmul_gradient(rng):
    x = Tensor(rng.standard_normal((6, 4)))
    w = Parameter(rng.standard_normal((4, 3)) * 0.5)
    labels = rng.integers(0, 3, size=6)

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.matmul(x, w)), labels)

    check_gradient(loss, w)


def test_relu_gradient(rng):
    w = Parameter(rng.standard_normal((5, 4)))
    labels = rng.integers(0, 4, size=5)

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.relu(w)), labels)

    check_gradient(loss, w)


def test_log_softmax_rows_sum_to_one(rng):
    x = Tensor(rng.standard_normal((7, 5)))
    out = ag.log_softmax(x)
    np.testing.assert_allclose(np.exp(out.data).sum(axis=1), np.ones(7), rtol=1e-5)


def test_nll_loss_with_mask(rng):
    logits = Parameter(rng.standard_normal((6, 3)))
    labels = rng.integers(0, 3, size=6)
    mask = np.array([True, False, True, False, True, False])

    def loss():
        return ag.nll_loss(ag.log_softmax(logits), labels, mask)

    check_gradient(loss, logits)
    with pytest.raises(ValueError):
        ag.nll_loss(ag.log_softmax(logits), labels, np.zeros(6, dtype=bool))


def test_dropout_training_and_eval(rng):
    x = Tensor(np.ones((100, 10)), requires_grad=True)
    gen = np.random.default_rng(0)
    out_eval = ag.dropout(x, 0.5, gen, training=False)
    assert out_eval is x
    out_train = ag.dropout(x, 0.5, gen, training=True)
    kept = out_train.data != 0
    # Inverted dropout rescales kept activations.
    assert np.allclose(out_train.data[kept], 2.0)
    with pytest.raises(ValueError):
        ag.dropout(x, 1.0, gen)


def test_row_l2_normalize_gradient(rng):
    w = Parameter(rng.standard_normal((4, 5)) + 0.5)
    labels = rng.integers(0, 5, size=4)

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.row_l2_normalize(w)), labels)

    check_gradient(loss, w)
    normalized = ag.row_l2_normalize(Tensor(rng.standard_normal((6, 3))))
    np.testing.assert_allclose(np.linalg.norm(normalized.data, axis=1), np.ones(6), rtol=1e-5)


def test_spmm_op_matches_adjacency_product(rng):
    adj = random_csr(24, 24, 0.2, seed=9)
    backend = make_backend("dgl", adj)
    dense = Tensor(rng.standard_normal((24, 5)), requires_grad=True)
    out = ag.spmm(backend, None, dense)
    np.testing.assert_allclose(out.data, adj.to_dense() @ dense.data, rtol=1e-4, atol=1e-4)


def test_spmm_gradient_wrt_dense(rng):
    adj = random_csr(16, 16, 0.25, seed=10)
    backend = make_backend("dgl", adj)
    dense = Parameter(rng.standard_normal((16, 3)))
    labels = rng.integers(0, 3, size=16)

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.spmm(backend, None, dense)), labels)

    check_gradient(loss, dense)


def test_spmm_gradient_wrt_edge_values(rng):
    adj = random_csr(12, 12, 0.3, seed=11)
    backend = make_backend("dgl", adj)
    dense = Tensor(rng.standard_normal((12, 3)))
    values = Parameter(rng.standard_normal(adj.nnz))
    labels = rng.integers(0, 3, size=12)

    def loss():
        return ag.nll_loss(ag.log_softmax(ag.spmm(backend, values, dense)), labels)

    check_gradient(loss, values)


def test_sddmm_op_matches_reference(rng):
    adj = random_csr(20, 20, 0.2, seed=12)
    backend = make_backend("dgl", adj)
    a = Tensor(rng.standard_normal((20, 6)))
    b = Tensor(rng.standard_normal((20, 6)))
    out = ag.sddmm(backend, a, b)
    rows = np.repeat(np.arange(20), np.diff(adj.indptr).astype(int))
    cols = adj.indices
    expected = np.einsum("ij,ij->i", a.data[rows], b.data[cols])
    np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)


def test_sddmm_gradient(rng):
    adj = random_csr(10, 10, 0.3, seed=13)
    backend = make_backend("dgl", adj)
    a = Parameter(rng.standard_normal((10, 4)) * 0.5)
    b = Tensor(rng.standard_normal((10, 4)))
    dense = Tensor(rng.standard_normal((10, 3)))
    labels = rng.integers(0, 3, size=10)

    def loss():
        edge = ag.sddmm(backend, a, b)
        att = ag.edge_softmax(backend, edge)
        return ag.nll_loss(ag.log_softmax(ag.spmm(backend, att, dense)), labels)

    check_gradient(loss, a, rtol=8e-2, atol=8e-3)


def test_edge_softmax_normalizes_rows(rng):
    adj = random_csr(15, 15, 0.3, seed=14)
    backend = make_backend("dgl", adj)
    logits = Tensor(rng.standard_normal(adj.nnz))
    out = ag.edge_softmax(backend, logits)
    indptr = adj.indptr
    for r in range(15):
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        if lo < hi:
            assert out.data[lo:hi].sum() == pytest.approx(1.0, rel=1e-5)
