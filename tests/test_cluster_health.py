"""Host health state machine: retry/backoff, recovery, death forensics.

A transient transport failure must cost one resend, not a host: the
client turns SUSPECT, re-dials under its :class:`RetryPolicy`, and comes
back HEALTHY with zero user-visible errors.  Only an exhausted policy
declares the host DEAD — and then the death is *explained*: the cause
exception, its timestamp and the in-flight task land in
``stats_snapshot()``.  Everything here is driven deterministically by the
seeded :class:`~repro.testing.faults.FaultPlan`, not by signals and
sleeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.cluster import ClusterScheduler, RetryPolicy
from repro.cluster.head import spawn_local_host
from repro.cluster.membership import HostHealth
from repro.formats.mebcrs import MEBCRSMatrix
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler
from repro.testing import FaultPlan

TIMEOUT = 120


def _workload(seed=40, n=17, rows=220, cols=200, density=0.06):
    csr = random_csr(rows, cols, density, seed=seed)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    base = ShardScheduler(workers=1).run_spmm(fmt, b_q, Precision.FP16)
    return csr, fmt, b_q, base


# ------------------------------------------------------------- RetryPolicy
def test_retry_policy_delays_are_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.05, cap_delay_s=0.3, seed=7)
    first = list(policy.delays("host-0#1"))
    again = list(policy.delays("host-0#1"))
    other = list(policy.delays("host-1#1"))
    assert first == again, "same seed+key must replay the same backoff"
    assert first != other, "different keys must not re-dial in lockstep"
    assert len(first) == 5
    assert all(0.05 <= d <= 0.3 for d in first)
    # Exponential up to the cap: strictly growing until the cap flattens it.
    assert first[0] < first[2]


def test_retry_policy_zero_attempts_means_fail_fast():
    assert list(RetryPolicy(max_attempts=0).delays()) == []
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-0.1)


# ------------------------------------------------- SUSPECT → HEALTHY (blip)
def test_transient_drop_recovers_with_zero_user_visible_errors():
    """A dropped connection at a task frame boundary: the host goes
    SUSPECT, re-dials, resends — the caller sees a bit-exact result and
    the host ends the episode HEALTHY with no death recorded."""
    csr, fmt, b_q, base = _workload(seed=41)
    key = csr.content_key()
    plan = FaultPlan(seed=1)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.02, seed=1),
    ) as sched:
        victim = sched.affinity_host(key)
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        assert plan.fired_kinds() == ["drop_connection"]
        snap = sched.stats_snapshot()
        assert snap["host_deaths"] == 0
        assert snap["reconnects"] >= 1
        assert snap["inline_fallbacks"] == 0
        entry = snap["hosts"][victim.host_id]
        assert entry["state"] == "healthy"
        assert entry["transitions"].get("healthy->suspect", 0) >= 1
        assert entry["transitions"].get("suspect->healthy", 0) >= 1
        assert victim.state is HostHealth.HEALTHY


# --------------------------------------------- retries exhausted → DEAD
def test_exhausted_retries_declare_dead_with_failover_and_forensics():
    """Drop + refused re-dials: the RetryPolicy runs dry, the host goes
    DEAD, the shards fail over bit-identically — and the death record in
    ``stats_snapshot()`` carries cause, timestamp and the in-flight task."""
    csr, fmt, b_q, base = _workload(seed=42)
    key = csr.content_key()
    plan = FaultPlan(seed=2)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.02, seed=2),
        auto_readmit=False,  # keep DEAD stable for the assertions
    ) as sched:
        victim = sched.affinity_host(key)
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        plan.refuse_connect(2, scope=victim.host_id)  # both backoff re-dials
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        assert "refuse_connect" in plan.fired_kinds()
        snap = sched.stats_snapshot()
        assert snap["host_deaths"] == 1
        assert snap["failovers"] >= 1 and snap["shards_failed_over"] >= 1
        assert snap["reconnect_attempts"] >= 2
        assert victim.state is HostHealth.DEAD
        # Satellite: _mark_dead records cause, timestamp and in-flight task.
        failure = snap["hosts"][victim.host_id]["last_failure"]
        assert failure is not None
        assert failure["cause_type"] == "ConnectionRefusedError"
        assert "fault injection" in failure["cause"]
        assert failure["at_unix"] > 0
        assert "spmm shard" in failure["in_flight"]
        assert snap["death_log"] and snap["death_log"][-1]["host"] == victim.host_id


# ------------------------------------------------------------- speculation
def test_suspect_host_triggers_speculative_dispatch():
    """A shard stuck on a SUSPECT host (slow backoff) is duplicated onto
    the next host in rendezvous order after ``speculation_delay_s`` — the
    request completes exactly, without waiting out the backoff."""
    csr, fmt, b_q, base = _workload(seed=43)
    key = csr.content_key()
    plan = FaultPlan(seed=3)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        # Slow enough backoff that SUSPECT clearly overlaps the
        # speculation point; refusals keep the first re-dial failing.
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.6, jitter=0.0, seed=3),
        speculation_delay_s=0.1,
    ) as sched:
        victim = sched.affinity_host(key)
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=10_000, csr=csr)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
        assert snap["speculative_dispatches"] >= 1
        backup = [h for h in sched.hosts if h.host_id != victim.host_id][0]
        assert snap["hosts"][backup.host_id]["tasks_completed"] >= 1


def test_speculation_disabled_waits_out_the_backoff():
    csr, fmt, b_q, base = _workload(seed=44)
    key = csr.content_key()
    plan = FaultPlan(seed=4)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.02, seed=4),
        speculation_delay_s=None,
    ) as sched:
        victim = sched.affinity_host(key)
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        assert sched.stats_snapshot()["speculative_dispatches"] == 0


# --------------------------------------------------------- max_frame_bytes
def test_head_side_frame_limit_bounds_result_frames_then_fails_over():
    """A head-side ``max_frame_bytes`` below the result size rejects every
    reply before allocation; the bounded per-task recovery budget then
    declares the host DEAD (no livelock through eternally-successful
    reconnects) and the request completes in-parent, still exactly."""
    import multiprocessing as mp

    csr, fmt, b_q, base = _workload(seed=45)
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)
    process, address = spawn_local_host(ctx, "oversize-test")
    try:
        with ClusterScheduler(
            addresses=[address],
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01, seed=5),
            max_frame_bytes=4096,  # far below the dense result rows
            auto_readmit=False,
        ) as sched:
            out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=10_000, csr=csr)
            np.testing.assert_array_equal(out, base)
            snap = sched.stats_snapshot()
            assert snap["frames_oversized"] >= 1
            assert snap["host_deaths"] == 1
            assert snap["inline_fallbacks"] > 0
            failure = snap["hosts"]["host-0"]["last_failure"]
            assert failure["cause_type"] == "FrameTooLargeError"
    finally:
        if process.is_alive():
            process.terminate()
        process.join(10)
