"""Content-hash keying of the CSR → blocked-format translation cache."""

from __future__ import annotations

import numpy as np

from helpers import random_csr

from repro.formats.cache import (
    TranslationCache,
    cached_mebcrs,
    cached_sgt16,
    clear_format_cache,
    format_cache_size,
    format_cache_stats,
    reset_format_cache_stats,
)
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix


def _twin(csr: CSRMatrix) -> CSRMatrix:
    """A structurally equal but distinct CSR object (a second load)."""
    return CSRMatrix(csr.indptr.copy(), csr.indices.copy(), csr.data.copy(), csr.shape)


def setup_function(_):
    clear_format_cache()


def test_content_key_is_stable_and_distinguishes():
    csr = random_csr(64, 60, 0.08, seed=1)
    twin = _twin(csr)
    assert csr.content_key() == twin.content_key()
    assert csr.content_key() == csr.content_key()  # memoised, stable
    other_values = csr.with_values(csr.data + 1.0)
    assert other_values.content_key() != csr.content_key()
    other_shape = CSRMatrix(
        np.append(csr.indptr, csr.nnz), csr.indices, csr.data, (csr.n_rows + 1, csr.n_cols)
    )
    assert other_shape.content_key() != csr.content_key()


def test_by_content_shares_translation_across_equal_matrices():
    csr = random_csr(64, 60, 0.08, seed=2)
    twin = _twin(csr)
    first = cached_mebcrs(csr, "fp16", by_content=True)
    assert cached_mebcrs(twin, "fp16", by_content=True) is first
    # The twin's identity key is aliased to the shared entry afterwards, so
    # even identity-mode lookups now hit.
    assert cached_mebcrs(twin, "fp16") is first


def test_identity_fast_path_unaffected():
    csr = random_csr(48, 48, 0.1, seed=3)
    twin = _twin(csr)
    first = cached_mebcrs(csr, "fp16")
    assert cached_mebcrs(csr, "fp16") is first
    # Pure identity mode still treats the twin as a different matrix.
    assert cached_mebcrs(twin, "fp16") is not first


def test_content_entries_respect_kind_and_precision():
    csr = random_csr(64, 64, 0.08, seed=4)
    twin = _twin(csr)
    me16 = cached_mebcrs(csr, "fp16", by_content=True)
    assert cached_mebcrs(twin, "tf32", by_content=True) is not me16
    sg = cached_sgt16(csr, "tf32", by_content=True)
    assert cached_sgt16(twin, "tf32", by_content=True) is sg
    assert sg is not me16


def test_content_miss_for_different_matrices():
    a = random_csr(64, 64, 0.08, seed=5)
    b = random_csr(64, 64, 0.08, seed=6)
    fa = cached_mebcrs(a, "fp16", by_content=True)
    assert cached_mebcrs(b, "fp16", by_content=True) is not fa


def test_cache_size_counts_alias_entries():
    clear_format_cache()
    csr = random_csr(40, 40, 0.1, seed=7)
    cached_mebcrs(csr, "fp16", by_content=True)
    # One identity entry + one content entry.
    assert format_cache_size() == 2
    cached_mebcrs(_twin(csr), "fp16", by_content=True)
    # The twin adds only its identity alias.
    assert format_cache_size() == 3
    clear_format_cache()
    assert format_cache_size() == 0


def test_stats_count_hits_misses_and_content_hits():
    reset_format_cache_stats()
    csr = random_csr(48, 48, 0.1, seed=10)
    base = format_cache_stats()
    assert base.hits == 0 and base.misses == 0 and base.hit_rate == 1.0

    cached_mebcrs(csr, "fp16", by_content=True)  # miss: builds
    cached_mebcrs(csr, "fp16")  # identity hit
    twin = _twin(csr)
    cached_mebcrs(twin, "fp16", by_content=True)  # content hit (dedup)
    cached_mebcrs(twin, "fp16")  # identity hit via the alias

    stats = format_cache_stats()
    assert stats.misses == 1
    assert stats.hits == 3
    assert stats.content_hits == 1
    assert stats.lookups == 4
    assert stats.hit_rate == 3 / 4
    reset_format_cache_stats()
    assert format_cache_stats().lookups == 0


def test_evictions_are_counted_by_isolated_instance():
    cache = TranslationCache(maxsize=2)
    matrices = [random_csr(16, 16, 0.2, seed=s) for s in range(3)]
    for m in matrices:
        cache.lookup(
            (id(m),), m, lambda m=m: MEBCRSMatrix.from_csr(m, precision="fp16")
        )
    stats = cache.stats()
    assert stats.misses == 3
    assert stats.evictions == 1  # the cap squeezed the first entry out
    assert stats.size == 2
    cache.clear()
    assert len(cache) == 0
