"""Shared non-fixture helpers for the test suite.

Kept separate from ``conftest.py`` so test modules can import them by name:
importing from ``conftest`` breaks as soon as another rootdir directory (the
benchmark harness) also ships a ``conftest.py``, because the flat module
namespace can only hold one module called ``conftest``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.csr import CSRMatrix


def random_csr(
    n_rows: int,
    n_cols: int,
    density: float,
    seed: int = 0,
    ensure_nonempty: bool = True,
) -> CSRMatrix:
    """Random CSR matrix helper used across test modules."""
    matrix = sp.random(n_rows, n_cols, density=density, format="csr", random_state=seed)
    matrix.data = np.abs(matrix.data) + 0.1  # keep values away from zero
    csr = CSRMatrix.from_scipy(matrix)
    if ensure_nonempty and csr.nnz == 0:
        dense = np.zeros((n_rows, n_cols), dtype=np.float32)
        dense[0, 0] = 1.0
        csr = CSRMatrix.from_dense(dense)
    return csr
