"""Fused layer serving: parity, coalescing, aging, segment-matmul requests.

The contract of ``Server.submit_layer``: one request runs the whole
SDDMM → scale → edge-softmax → SpMM pipeline **bit-identically** to the
three-request composition (``submit_sddmm`` → client-side gather + scale →
``submit_edge_softmax`` → ``submit_spmm`` over the attention matrix), with
the same coalescing / priority / deadline semantics as the per-kernel
submissions.  The parity grid below runs the fused shard scheduler across
formats, shard sizes and worker counts against the composed reference, and
the server-level tests cover both execution modes through
:class:`repro.gnn.backends.ServedBackend`, whose OpStats must count
identically either way.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from helpers import random_csr

from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.gnn import SERVED_MODES, ServedBackend
from repro.kernels.sddmm_flash import VECTORS_PER_OUTPUT_BLOCK as FLASH_GROUP
from repro.kernels.sddmm_tcu16 import VECTORS_PER_OUTPUT_BLOCK as TCU16_GROUP
from repro.ops import segment_matmul, segment_softmax
from repro.precision.types import Precision, quantize
from repro.serve import LatencyStats, ProgramError, Server, ShardScheduler
from repro.serve.program import attention_csr, gather_edge_values

TIMEOUT = 120

_FORMATS = {
    "mebcrs": (MEBCRSMatrix, FLASH_GROUP),
    "sgt16": (SGT16Matrix, TCU16_GROUP),
}


def _layer_workload(fmt_name="mebcrs", seed=4, rows=160, cols=150, k=24, n=16):
    cls, group = _FORMATS[fmt_name]
    csr = random_csr(rows, cols, 0.05, seed=seed)
    fmt = cls.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    a_q = quantize(rng.standard_normal((rows, k)), Precision.FP16).astype(np.float32)
    b_q = quantize(rng.standard_normal((cols, k)), Precision.FP16).astype(np.float32)
    x_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    return csr, fmt, group, a_q, b_q, x_q


def composed_layer_reference(csr, fmt, group, a_q, b_q, x_q, scale, scale_by_mask):
    """The three-call composition every fused executor must match bit-for-bit."""
    ref = ShardScheduler(workers=1)
    vals = ref.run_sddmm(fmt, a_q, b_q, Precision.FP16, group, scale_by_mask=scale_by_mask)
    logits = gather_edge_values(fmt.partition, csr.indptr, vals)
    if scale is not None:
        logits = (logits * np.float32(scale)).astype(np.float32)
    attention = segment_softmax(logits, csr.indptr)
    acsr = attention_csr(csr, attention)
    afmt = type(fmt).from_csr(acsr, precision="fp16")
    return ref.run_spmm(afmt, x_q, Precision.FP16)


# ------------------------------------------------------ scheduler parity grid
@pytest.mark.parametrize("fmt_name", ["mebcrs", "sgt16"])
@pytest.mark.parametrize("target", (1, 7, 10_000))
@pytest.mark.parametrize("workers", (1, 3))
def test_fused_layer_scheduler_parity_grid(fmt_name, target, workers):
    csr, fmt, group, a_q, b_q, x_q = _layer_workload(fmt_name)
    base = composed_layer_reference(csr, fmt, group, a_q, b_q, x_q, 0.8, False)
    sched = ShardScheduler(workers=workers)
    out, stages = sched.run_layer(
        fmt,
        csr.indptr,
        a_q,
        b_q,
        x_q,
        Precision.FP16,
        group,
        scale=0.8,
        target_blocks=target,
    )
    np.testing.assert_array_equal(out, base)
    assert set(stages) == {"sddmm_s", "edge_softmax_s", "spmm_s"}
    assert all(seconds >= 0.0 for seconds in stages.values())


@pytest.mark.parametrize("scale, by_mask", [(None, False), (0.5, True)])
def test_fused_layer_scale_variants(scale, by_mask):
    csr, fmt, group, a_q, b_q, x_q = _layer_workload(seed=9)
    base = composed_layer_reference(csr, fmt, group, a_q, b_q, x_q, scale, by_mask)
    out, _ = ShardScheduler(workers=2).run_layer(
        fmt,
        csr.indptr,
        a_q,
        b_q,
        x_q,
        Precision.FP16,
        group,
        scale=scale,
        scale_by_mask=by_mask,
        target_blocks=5,
    )
    np.testing.assert_array_equal(out, base)


def test_fused_layer_empty_matrix_yields_zeros():
    empty = random_csr(24, 20, 0.0, ensure_nonempty=False, seed=1)
    fmt = MEBCRSMatrix.from_csr(empty, precision="fp16")
    out, stages = ShardScheduler(workers=1).run_layer(
        fmt,
        empty.indptr,
        np.zeros((24, 4), np.float32),
        np.zeros((20, 4), np.float32),
        np.zeros((20, 3), np.float32),
        Precision.FP16,
        FLASH_GROUP,
    )
    assert out.shape == (24, 3) and not out.any()
    assert all(seconds == 0.0 for seconds in stages.values())


# --------------------------------------------------------- served layer modes
def test_served_fused_and_composed_are_bit_identical_with_equal_opstats():
    csr = random_csr(130, 130, 0.05, seed=11)  # square: AGNN's self-attention
    rng = np.random.default_rng(11)
    h = rng.standard_normal((csr.shape[0], 20)).astype(np.float32)
    with Server(workers=2) as srv:
        backends = {
            mode: ServedBackend(server=srv, adjacency=csr, mode=mode)
            for mode in SERVED_MODES
        }
        outs = {m: be.agnn_forward(h, beta=1.3) for m, be in backends.items()}
        np.testing.assert_array_equal(outs["fused"], outs["composed"])
        # The logical operator accounting is transport-independent.
        assert backends["fused"].stats == backends["composed"].stats
        assert backends["fused"].stats.sddmm_calls == 1
        assert backends["fused"].stats.edge_softmax_calls == 1
        assert backends["fused"].stats.spmm_calls == 1
        snap = srv.snapshot()
        # Fused: 1 request; composed: 3. The fused one banked 2 round trips.
        assert snap.layer_requests == 1
        assert snap.round_trips_saved == 2
        assert snap.operand_bytes_saved > 0
        assert snap.requests_completed == 4


def test_layer_priority_and_deadline_semantics_match_kernel_requests():
    """A queued layer request sheds on deadline exactly like an SpMM."""
    from repro.serve import ServeTimeoutError

    csr = random_csr(120, 120, 0.05, seed=13)
    rng = np.random.default_rng(13)
    a = rng.standard_normal((120, 8)).astype(np.float32)
    x = rng.standard_normal((120, 8)).astype(np.float32)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker_csr = random_csr(50, 40, 0.1, seed=99)
        blocker = srv.submit_spmm(
            blocker_csr, rng.standard_normal((40, 4)).astype(np.float32)
        )
        gate.entered.wait(TIMEOUT)
        doomed = srv.submit_layer(csr, a, a, x, timeout=0.01)
        time.sleep(0.05)  # let the deadline lapse while parked
        gate.release.set()
        blocker.result(TIMEOUT)
        with pytest.raises(ServeTimeoutError):
            doomed.result(TIMEOUT)
        assert srv.snapshot().requests_timed_out == 1


class _Gate:
    """Deterministic dispatcher block (see ``test_serve_overload``)."""

    def __init__(self, server: Server):
        self.entered = threading.Event()
        self.release = threading.Event()
        self._original = server._execute_group
        server._execute_group = self

    def __call__(self, group):
        self.entered.set()
        assert self.release.wait(TIMEOUT), "gate never released"
        self._original(group)


def test_same_layer_requests_coalesce_into_one_fused_pass():
    csr = random_csr(120, 120, 0.05, seed=15)
    rng = np.random.default_rng(15)
    a = rng.standard_normal((120, 12)).astype(np.float32)
    x1 = rng.standard_normal((120, 6)).astype(np.float32)
    x2 = rng.standard_normal((120, 9)).astype(np.float32)
    with Server(workers=1) as srv:
        # Solo runs for the reference outputs.
        solo1 = srv.submit_layer(csr, a, a, x1, scale=0.9).result(TIMEOUT)
        solo2 = srv.submit_layer(csr, a, a, x2, scale=0.9).result(TIMEOUT)
        gate = _Gate(srv)
        blocker_csr = random_csr(50, 40, 0.1, seed=98)
        blocker = srv.submit_spmm(
            blocker_csr, rng.standard_normal((40, 4)).astype(np.float32)
        )
        gate.entered.wait(TIMEOUT)
        before = srv.snapshot().batches_dispatched
        f1 = srv.submit_layer(csr, a, a, x1, scale=0.9)
        f2 = srv.submit_layer(csr, a, a, x2, scale=0.9)
        gate.release.set()
        blocker.result(TIMEOUT)
        r1, r2 = f1.result(TIMEOUT), f2.result(TIMEOUT)
        np.testing.assert_array_equal(r1.values, solo1.values)
        np.testing.assert_array_equal(r2.values, solo2.values)
        snap = srv.snapshot()
        # The pair shared one engine pass (their x panels concatenated).
        assert snap.batches_dispatched == before + 2  # blocker + fused pair
        assert snap.requests_coalesced >= 2
        assert r1.meta["batched_with"] == 1
        assert r2.meta["batched_with"] == 1


def test_different_scale_layers_do_not_coalesce():
    csr = random_csr(120, 120, 0.05, seed=16)
    rng = np.random.default_rng(16)
    a = rng.standard_normal((120, 8)).astype(np.float32)
    x = rng.standard_normal((120, 5)).astype(np.float32)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker_csr = random_csr(50, 40, 0.1, seed=97)
        blocker = srv.submit_spmm(
            blocker_csr, rng.standard_normal((40, 4)).astype(np.float32)
        )
        gate.entered.wait(TIMEOUT)
        f1 = srv.submit_layer(csr, a, a, x, scale=0.5)
        f2 = srv.submit_layer(csr, a, a, x, scale=2.0)
        gate.release.set()
        blocker.result(TIMEOUT)
        r1, r2 = f1.result(TIMEOUT), f2.result(TIMEOUT)
        assert r1.meta["batched_with"] == 0
        assert r2.meta["batched_with"] == 0
        assert not np.array_equal(r1.values, r2.values)


def test_submit_layer_validates_shapes_and_program():
    csr, *_ = _layer_workload(seed=17)
    rows, cols = csr.shape
    good_a = np.ones((rows, 6), np.float32)
    good_b = np.ones((cols, 6), np.float32)
    good_x = np.ones((cols, 4), np.float32)
    with Server(workers=1) as srv:
        with pytest.raises(ValueError):
            srv.submit_layer(csr, np.ones((rows + 1, 6)), good_b, good_x)
        with pytest.raises(ValueError):
            srv.submit_layer(csr, good_a, np.ones((cols, 7)), good_x)
        with pytest.raises(ValueError):
            srv.submit_layer(csr, good_a, good_b, np.ones((cols + 2, 4)))
        with pytest.raises(ProgramError):
            srv.submit_layer(csr, good_a, good_b, good_x, scale=float("nan"))


def test_snapshot_exposes_per_stage_latency_split():
    csr = random_csr(120, 120, 0.05, seed=19)
    rng = np.random.default_rng(19)
    a = rng.standard_normal((120, 8)).astype(np.float32)
    x = rng.standard_normal((120, 4)).astype(np.float32)
    with Server(workers=1) as srv:
        for _ in range(3):
            srv.submit_layer(csr, a, a, x).result(TIMEOUT)
        snap = srv.snapshot()
    assert set(snap.stage_latency) == {"sddmm", "edge_softmax", "spmm"}
    for stage, stats in snap.stage_latency.items():
        assert isinstance(stats, LatencyStats)  # the existing snapshot shape
        assert stats.count == 3
        assert stats.mean_s >= 0.0
        assert stats.p99_s >= stats.p50_s >= 0.0


# ------------------------------------------------------------ edge softmax op
def test_served_edge_softmax_matches_segment_softmax():
    csr, *_ = _layer_workload(seed=21)
    logits = np.random.default_rng(21).standard_normal(csr.nnz).astype(np.float32)
    with Server(workers=1) as srv:
        res = srv.submit_edge_softmax(csr, logits).result(TIMEOUT)
        with pytest.raises(ValueError):
            srv.submit_edge_softmax(csr, logits[:-1])
    np.testing.assert_array_equal(res.values, segment_softmax(logits, csr.indptr))
    assert res.useful_flops == 5 * csr.nnz


# ----------------------------------------------------------- segment matmul
def test_served_segment_matmul_matches_direct_op():
    rng = np.random.default_rng(23)
    data = rng.standard_normal((40, 10)).astype(np.float32)
    offsets = np.array([0, 12, 12, 25, 40], dtype=np.int64)
    weights = [rng.standard_normal((10, 7)).astype(np.float32) for _ in range(4)]
    ref = segment_matmul(data, offsets, weights)
    with Server(workers=1) as srv:
        res = srv.submit_segment_matmul(data, offsets, weights).result(TIMEOUT)
    np.testing.assert_array_equal(res.values, np.asarray(ref, dtype=np.float32))
    assert res.useful_flops == 2 * 40 * 10 * 7


def test_submit_segment_matmul_validates_inputs():
    rng = np.random.default_rng(25)
    data = rng.standard_normal((20, 6)).astype(np.float32)
    offsets = np.array([0, 8, 20], dtype=np.int64)
    weights = [rng.standard_normal((6, 5)).astype(np.float32) for _ in range(2)]
    with Server(workers=1) as srv:
        with pytest.raises(ValueError):  # offsets must start at 0
            srv.submit_segment_matmul(data, np.array([1, 8, 20]), weights)
        with pytest.raises(ValueError):  # offsets must end at len(data)
            srv.submit_segment_matmul(data, np.array([0, 8, 19]), weights)
        with pytest.raises(ValueError):  # non-decreasing
            srv.submit_segment_matmul(data, np.array([0, 12, 8, 20]), weights)
        with pytest.raises(ValueError):  # one weight per segment
            srv.submit_segment_matmul(data, offsets, weights[:1])
        with pytest.raises(ValueError):  # uniform K
            srv.submit_segment_matmul(
                data, offsets, [weights[0], rng.standard_normal((7, 5))]
            )


# ------------------------------------------------------------- priority aging
def test_aging_promotes_a_starved_low_priority_request():
    """With ``aging_halflife_s`` set, a low-priority request that waited a
    few halflives outranks fresh high-priority traffic; without it, the
    high-priority flood always wins."""
    work = [
        (random_csr(60, 50, 0.08, seed=200 + i),
         np.random.default_rng(i).standard_normal((50, 4)).astype(np.float32))
        for i in range(3)
    ]
    (m0, b0), (m1, b1), (m2, b2) = work

    def run(halflife):
        order = []
        lock = threading.Lock()
        with Server(workers=1, aging_halflife_s=halflife) as srv:
            gate = _Gate(srv)
            blocker = srv.submit_spmm(m0, b0)
            gate.entered.wait(TIMEOUT)
            old_low = srv.submit_spmm(m1, b1, priority=0)
            time.sleep(0.4)  # many halflives: +priority ≫ the flood's 9
            fresh_high = srv.submit_spmm(m2, b2, priority=9)
            for label, fut in (("low", old_low), ("high", fresh_high)):
                def record(f, label=label):
                    with lock:
                        order.append(label)
                fut.add_done_callback(record)
            gate.release.set()
            blocker.result(TIMEOUT)
            old_low.result(TIMEOUT)
            fresh_high.result(TIMEOUT)
            aged = srv.snapshot().requests_aged
        return order, aged

    order, aged = run(halflife=0.02)
    assert order == ["low", "high"]
    assert aged >= 1

    order, aged = run(halflife=None)
    assert order == ["high", "low"]
    assert aged == 0


def test_aging_halflife_validation():
    with pytest.raises(ValueError):
        Server(workers=1, aging_halflife_s=0.0)
    with pytest.raises(ValueError):
        Server(workers=1, aging_halflife_s=-1.0)
