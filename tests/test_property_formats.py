"""Property-based tests (hypothesis) for formats and partitioning invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.formats.srbcrs import SRBCRSMatrix
from repro.formats.stats import mma_count_spmm, spmm_data_access_bytes, vector_stats
from repro.formats.windows import partition_windows


@st.composite
def sparse_matrices(draw, max_rows=96, max_cols=96, max_nnz=400):
    """Random sparse matrices as COO triplets (duplicates allowed, summed)."""
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    n_cols = draw(st.integers(min_value=1, max_value=max_cols))
    nnz = draw(st.integers(min_value=0, max_value=min(max_nnz, n_rows * n_cols)))
    rows = draw(
        st.lists(st.integers(min_value=0, max_value=n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(min_value=0, max_value=n_cols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False), min_size=nnz, max_size=nnz
        )
    )
    return CSRMatrix.from_coo(np.array(rows), np.array(cols), np.array(values), (n_rows, n_cols))


@settings(max_examples=60, deadline=None)
@given(matrix=sparse_matrices(), vector_size=st.sampled_from([8, 16]))
def test_partition_accounts_for_every_nonzero(matrix, vector_size):
    part = partition_windows(matrix, vector_size)
    assert part.nnz == matrix.nnz
    assert part.num_nonzero_vectors * vector_size >= matrix.nnz
    assert part.zero_fill >= 0
    assert part.window_ptr[-1] == part.num_nonzero_vectors
    assert np.all(np.diff(part.window_ptr) >= 0)


@settings(max_examples=60, deadline=None)
@given(matrix=sparse_matrices())
def test_zero_fill_monotone_in_vector_size(matrix):
    """Smaller vectors never store more zeros — the heart of the paper's argument."""
    s8 = vector_stats(matrix, 8)
    s16 = vector_stats(matrix, 16)
    assert s8.zero_fill <= s16.zero_fill
    # And the number of vectors can only grow when the window shrinks.
    assert s8.num_nonzero_vectors >= s16.num_nonzero_vectors


@settings(max_examples=40, deadline=None)
@given(matrix=sparse_matrices(), precision=st.sampled_from(["fp16", "tf32"]))
def test_mebcrs_round_trip(matrix, precision):
    fmt = MEBCRSMatrix.from_csr(matrix, precision=precision)
    np.testing.assert_allclose(fmt.to_dense(), matrix.to_dense(), rtol=2e-2, atol=2e-2)


@settings(max_examples=40, deadline=None)
@given(matrix=sparse_matrices())
def test_mebcrs_footprint_never_exceeds_srbcrs(matrix):
    """Table 7 invariant, for arbitrary sparsity structure."""
    me = MEBCRSMatrix.from_csr(matrix, precision="fp16")
    sr = SRBCRSMatrix.from_csr(matrix, precision="fp16")
    assert me.memory_footprint_bytes() <= sr.memory_footprint_bytes()
    assert sr.num_padded_vectors >= 0


@settings(max_examples=40, deadline=None)
@given(matrix=sparse_matrices(), n_dense=st.sampled_from([16, 32, 128]))
def test_mma_count_positive_and_monotone_in_n(matrix, n_dense):
    if matrix.nnz == 0:
        return
    m_small = mma_count_spmm(matrix, k=8, n_dense=n_dense, vector_size=8)
    m_large = mma_count_spmm(matrix, k=8, n_dense=2 * n_dense, vector_size=8)
    assert 0 < m_small <= m_large
    assert m_large <= 2 * m_small


@settings(max_examples=40, deadline=None)
@given(matrix=sparse_matrices())
def test_data_access_cost_nonnegative_and_scales_with_precision(matrix):
    if matrix.nnz == 0:
        return
    fp16 = spmm_data_access_bytes(matrix, k=8, n_dense=64, precision="fp16", vector_size=8)
    tf32 = spmm_data_access_bytes(matrix, k=8, n_dense=64, precision="tf32", vector_size=8)
    assert fp16 > 0
    assert tf32 == 2 * fp16


@settings(max_examples=40, deadline=None)
@given(matrix=sparse_matrices())
def test_sgt16_and_mebcrs_store_same_nonzeros(matrix):
    me = MEBCRSMatrix.from_csr(matrix, precision="fp16")
    sgt = SGT16Matrix.from_csr(matrix, precision="tf32")
    assert me.nnz == sgt.nnz == matrix.nnz
    np.testing.assert_allclose(sgt.to_dense(), me.to_dense(), rtol=2e-2, atol=2e-2)


@settings(max_examples=30, deadline=None)
@given(matrix=sparse_matrices(max_rows=48, max_cols=48, max_nnz=150))
def test_csr_round_trip_through_blocked_format(matrix):
    fmt = MEBCRSMatrix.from_csr(matrix, precision="fp32")
    back = fmt.to_csr()
    np.testing.assert_allclose(back.to_dense(), matrix.to_dense(), rtol=1e-5, atol=1e-5)
