"""Multi-process shard scheduler: bit-exact parity, retry, range invariants.

The contract is stronger than the thread-streaming one: because shards are
window-aligned and reduced one-shot per window, the scheduler's output is
**bit-identical** to the single-process ``engine="batched"`` one-shot path
for both SpMM and SDDMM, for any shard size, any worker count, through the
process pool or inline, and across injected shard failures (retry and
in-parent fallback included).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.formats.mebcrs import MEBCRSMatrix
from repro.kernels.common import FlashSparseConfig
from repro.kernels.engine import window_aligned_ranges
from repro.kernels.sddmm_flash import VECTORS_PER_OUTPUT_BLOCK, sddmm_flash_execute
from repro.kernels.spmm_flash import spmm_flash_execute
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler

#: Shard-size grid: single-block shards, a prime that straddles windows,
#: and larger-than-batch (single shard).
TARGETS = (1, 7, 10_000)


def _workload(seed=4, n=33, rows=300, cols=280, density=0.05):
    csr = random_csr(rows, cols, density, seed=seed)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    a_q = quantize(rng.standard_normal((rows, n)), Precision.FP16).astype(np.float32)
    base = spmm_flash_execute(fmt, b_q, FlashSparseConfig(precision="fp16"))
    sbase = sddmm_flash_execute(fmt, a_q, b_q, FlashSparseConfig(precision="fp16"))
    return fmt, a_q, b_q, base.values, sbase.output.vector_values


# One process pool per module: worker startup is the slow part.
@pytest.fixture(scope="module")
def pool():
    with ShardScheduler(workers=2) as scheduler:
        yield scheduler


@pytest.mark.parametrize("target", TARGETS)
def test_spmm_inline_sharding_is_bit_identical(target):
    fmt, _, b_q, base, _ = _workload()
    out = ShardScheduler(workers=1).run_spmm(fmt, b_q, Precision.FP16, target_blocks=target)
    np.testing.assert_array_equal(out, base)


@pytest.mark.parametrize("target", TARGETS)
def test_spmm_pool_sharding_is_bit_identical(pool, target):
    fmt, _, b_q, base, _ = _workload()
    out = pool.run_spmm(fmt, b_q, Precision.FP16, target_blocks=target)
    np.testing.assert_array_equal(out, base)


@pytest.mark.parametrize("target", (1, 10_000))
def test_sddmm_pool_sharding_is_bit_identical(pool, target):
    fmt, a_q, b_q, _, sbase = _workload()
    vals = pool.run_sddmm(
        fmt, a_q, b_q, Precision.FP16, VECTORS_PER_OUTPUT_BLOCK, target_blocks=target
    )
    np.testing.assert_array_equal(vals, sbase)


def test_sddmm_scale_by_mask_parity(pool):
    fmt, a_q, b_q, _, _ = _workload(seed=9)
    ref = sddmm_flash_execute(
        fmt, a_q, b_q, FlashSparseConfig(precision="fp16"), scale_by_mask=True
    )
    vals = pool.run_sddmm(
        fmt,
        a_q,
        b_q,
        Precision.FP16,
        VECTORS_PER_OUTPUT_BLOCK,
        scale_by_mask=True,
        target_blocks=5,
    )
    np.testing.assert_array_equal(vals, ref.output.vector_values)


def test_randomized_parity_suite(pool):
    """The acceptance criterion's randomized sweep: multiple shapes/seeds,
    bit-identical values through the multi-process path."""
    for seed in (11, 12, 13):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(50, 400))
        cols = int(rng.integers(50, 400))
        n = int(rng.integers(1, 50))
        fmt, a_q, b_q, base, sbase = _workload(
            seed=seed, n=n, rows=rows, cols=cols, density=0.06
        )
        target = int(rng.integers(1, 20))
        out = pool.run_spmm(fmt, b_q, Precision.FP16, target_blocks=target)
        np.testing.assert_array_equal(out, base)
        vals = pool.run_sddmm(
            fmt, a_q, b_q, Precision.FP16, VECTORS_PER_OUTPUT_BLOCK, target_blocks=target
        )
        np.testing.assert_array_equal(vals, sbase)


def test_shard_retry_recovers_and_counts(pool):
    fmt, _, b_q, base, _ = _workload(seed=21)
    before = dict(pool.stats)
    out = pool.run_spmm(
        fmt, b_q, Precision.FP16, target_blocks=7, _inject_failures={0: 1, 1: 2}
    )
    np.testing.assert_array_equal(out, base)
    assert pool.stats["retries"] >= before["retries"] + 3
    assert pool.stats["fallbacks"] == before["fallbacks"]


def test_shard_exhausted_retries_fall_back_inline(pool):
    fmt, a_q, b_q, base, sbase = _workload(seed=22)
    before = dict(pool.stats)
    # fail more times than the retry budget: the parent computes the shard.
    out = pool.run_spmm(
        fmt, b_q, Precision.FP16, target_blocks=7, _inject_failures={2: 99}
    )
    np.testing.assert_array_equal(out, base)
    assert pool.stats["fallbacks"] == before["fallbacks"] + 1
    vals = pool.run_sddmm(
        fmt,
        a_q,
        b_q,
        Precision.FP16,
        VECTORS_PER_OUTPUT_BLOCK,
        target_blocks=7,
        _inject_failures={0: 99},
    )
    np.testing.assert_array_equal(vals, sbase)


def test_degenerate_inputs():
    empty = MEBCRSMatrix.from_csr(
        random_csr(24, 18, 0.0, ensure_nonempty=False, seed=1), precision="fp16"
    )
    sched = ShardScheduler(workers=1)
    out = sched.run_spmm(empty, np.ones((18, 5), np.float32), Precision.FP16)
    assert out.shape == (24, 5) and not out.any()
    vals = sched.run_sddmm(
        empty,
        np.ones((24, 5), np.float32),
        np.ones((18, 5), np.float32),
        Precision.FP16,
        VECTORS_PER_OUTPUT_BLOCK,
    )
    assert vals.shape == empty.vector_values.shape


def test_window_aligned_ranges_invariants():
    # Window block offsets with empty windows at the front, middle and back.
    offsets = np.array([0, 0, 3, 3, 10, 12, 12], dtype=np.int64)
    for target in (1, 2, 5, 100):
        ranges = window_aligned_ranges(offsets, target)
        assert ranges, f"no ranges at target {target}"
        # Full coverage of all blocks, in order, without overlap.
        assert ranges[0].lo == 0 and ranges[-1].hi == 12
        for r0, r1 in zip(ranges, ranges[1:]):
            assert r0.hi == r1.lo and r0.w1 == r1.w0
        for r in ranges:
            # Window alignment: boundaries sit on window starts.
            assert r.lo == offsets[r.w0] and r.hi == offsets[r.w1]
            assert r.num_blocks > 0
    # A window wider than the target becomes its own shard (never split).
    ranges = window_aligned_ranges(offsets, 2)
    assert any(r.num_blocks == 7 for r in ranges)
    # Degenerate: no blocks at all.
    assert window_aligned_ranges(np.array([0, 0, 0]), 4) == []


def test_pool_survives_broken_worker_process():
    """A shard that kills its worker outright still completes via retry or
    fallback, and the scheduler can serve the next request."""
    fmt, _, b_q, base, _ = _workload(seed=23)
    with ShardScheduler(workers=2, retries=1) as sched:
        import repro.serve.scheduler as sched_mod

        original = sched_mod._WORKER_BODIES["spmm"]

        def killer(task):
            if task.get("fail_times", 0) >= 100 and task["attempt"] == 1:
                import os

                os._exit(13)  # simulate a crashed worker, not an exception
            return original(task)

        sched_mod._WORKER_BODIES["spmm"] = killer
        try:
            out = sched.run_spmm(
                fmt, b_q, Precision.FP16, target_blocks=7, _inject_failures={1: 100}
            )
        finally:
            sched_mod._WORKER_BODIES["spmm"] = original
        np.testing.assert_array_equal(out, base)
        # The scheduler still works after the pool broke.
        out2 = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7)
        np.testing.assert_array_equal(out2, base)
