"""Tests for FP16 / TF32 precision emulation."""

import numpy as np
import pytest

from repro.precision import (
    Precision,
    accumulate_dtype,
    dtype_for,
    element_bytes,
    quantize,
    quantize_tf32,
)


def test_precision_enum_values():
    assert Precision("fp16") is Precision.FP16
    assert Precision("tf32") is Precision.TF32
    assert Precision("fp32") is Precision.FP32
    assert str(Precision.FP16) == "fp16"


def test_element_bytes():
    assert element_bytes(Precision.FP16) == 2
    assert element_bytes(Precision.TF32) == 4
    assert element_bytes(Precision.FP32) == 4
    assert Precision.FP16.input_bytes == 2


def test_dtype_for():
    assert dtype_for("fp16") == np.float16
    assert dtype_for("tf32") == np.float32
    assert dtype_for("fp32") == np.float32


def test_accumulate_dtype_is_fp32():
    for p in Precision:
        assert accumulate_dtype(p) == np.float32


def test_fp32_quantize_is_exact_for_float32_values(rng):
    x = rng.standard_normal(100).astype(np.float32)
    np.testing.assert_array_equal(quantize(x, "fp32"), x)


def test_fp16_quantize_matches_numpy_float16(rng):
    x = rng.standard_normal(1000)
    np.testing.assert_array_equal(quantize(x, "fp16"), x.astype(np.float16).astype(np.float32))


def test_tf32_quantize_is_idempotent(rng):
    x = rng.standard_normal(1000).astype(np.float32) * 100
    once = quantize_tf32(x)
    twice = quantize_tf32(once)
    np.testing.assert_array_equal(once, twice)


def test_tf32_keeps_10_mantissa_bits():
    # 1 + 2^-10 is representable in TF32; 1 + 2^-11 rounds to 1 or 1 + 2^-10.
    exact = np.float32(1.0 + 2.0**-10)
    assert quantize_tf32(np.array([exact]))[0] == exact
    rounded = quantize_tf32(np.array([np.float32(1.0 + 2.0**-12)]))[0]
    assert rounded in (np.float32(1.0), np.float32(1.0 + 2.0**-10))


def test_tf32_relative_error_bound(rng):
    x = rng.standard_normal(10_000) * np.exp(rng.uniform(-10, 10, 10_000))
    q = quantize_tf32(x.astype(np.float32))
    rel = np.abs(q - x.astype(np.float32)) / np.maximum(np.abs(x), 1e-30)
    assert rel.max() <= 2.0**-10


def test_tf32_preserves_exponent_range_beyond_fp16():
    # 1e30 overflows FP16 but is representable in TF32.
    big = np.array([1e30], dtype=np.float32)
    assert np.isinf(quantize(big, "fp16")).all()
    assert np.isfinite(quantize(big, "tf32")).all()


def test_tf32_handles_special_values():
    x = np.array([np.inf, -np.inf, np.nan, 0.0, -0.0], dtype=np.float32)
    q = quantize_tf32(x)
    assert np.isinf(q[0]) and q[0] > 0
    assert np.isinf(q[1]) and q[1] < 0
    assert np.isnan(q[2])
    assert q[3] == 0.0 and q[4] == 0.0


def test_tf32_rounds_to_nearest(rng):
    # TF32 rounding error should be at most half a ULP at the 10-bit mantissa.
    x = np.float32(1.0) + np.float32(2.0**-11)  # exactly halfway
    q = quantize_tf32(np.array([x], dtype=np.float32))[0]
    assert q in (np.float32(1.0), np.float32(1.0 + 2.0**-10))


def test_quantize_preserves_shape(rng):
    x = rng.standard_normal((7, 5, 3))
    for p in ("fp16", "tf32", "fp32"):
        assert quantize(x, p).shape == x.shape


def test_quantize_error_ordering(rng):
    """TF32 and FP16 share mantissa width, so in-range errors are comparable and
    both are worse than FP32."""
    x = rng.standard_normal(5000)
    err16 = np.abs(quantize(x, "fp16") - x).max()
    err32 = np.abs(quantize(x, "tf32") - x).max()
    err_full = np.abs(quantize(x, "fp32") - x).max()
    assert err_full <= err32 <= err16 * 4 + 1e-12
    assert err16 > 0
