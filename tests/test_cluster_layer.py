"""Protocol v4 fused layer serving across the cluster.

The multi-host contract extends the fused-layer one: a v4 ``layer_task``
runs the whole SDDMM → scale → softmax → SpMM pipeline inside the worker
host and is **bit-identical** to the three-call composition — across
formats, shard sizes, host counts, under fault-injected failover, and when
the peer only speaks protocol v3, in which case the head transparently
falls back to the per-kernel composed pipeline (two cluster requests)
with, again, bit-identical output.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from helpers import random_csr

from repro.cluster import ClusterScheduler, RetryPolicy
from repro.cluster.head import spawn_local_host
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.sddmm_flash import VECTORS_PER_OUTPUT_BLOCK as FLASH_GROUP
from repro.kernels.sddmm_tcu16 import VECTORS_PER_OUTPUT_BLOCK as TCU16_GROUP
from repro.ops import segment_matmul, segment_softmax
from repro.precision.types import Precision, quantize
from repro.serve.program import attention_csr, gather_edge_values
from repro.serve.scheduler import ShardScheduler
from repro.testing import FaultPlan

TIMEOUT = 120

_FORMATS = {
    "mebcrs": (MEBCRSMatrix, FLASH_GROUP),
    "sgt16": (SGT16Matrix, TCU16_GROUP),
}


def _layer_workload(fmt_name="mebcrs", seed=4, rows=220, cols=200, k=20, n=12):
    cls, group = _FORMATS[fmt_name]
    csr = random_csr(rows, cols, 0.05, seed=seed)
    fmt = cls.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    a_q = quantize(rng.standard_normal((rows, k)), Precision.FP16).astype(np.float32)
    b_q = quantize(rng.standard_normal((cols, k)), Precision.FP16).astype(np.float32)
    x_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    base = _composed_reference(csr, fmt, group, a_q, b_q, x_q, 0.8, False)
    return csr, fmt, group, a_q, b_q, x_q, base


def _composed_reference(csr, fmt, group, a_q, b_q, x_q, scale, scale_by_mask):
    """The three-call composition every fused executor must match exactly."""
    ref = ShardScheduler(workers=1)
    vals = ref.run_sddmm(
        fmt, a_q, b_q, Precision.FP16, group, scale_by_mask=scale_by_mask
    )
    logits = gather_edge_values(fmt.partition, csr.indptr, vals)
    if scale is not None:
        logits = (logits * np.float32(scale)).astype(np.float32)
    attention = segment_softmax(logits, csr.indptr)
    acsr = attention_csr(csr, attention)
    afmt = type(fmt).from_csr(acsr, precision="fp16")
    return ref.run_spmm(afmt, x_q, Precision.FP16)


def _run_layer(sched, csr, fmt, group, a_q, b_q, x_q, target=7, scale=0.8):
    out, stages = sched.run_layer(
        fmt,
        csr.indptr,
        a_q,
        b_q,
        x_q,
        Precision.FP16,
        group,
        scale=scale,
        target_blocks=target,
        csr=csr,
        content_key=csr.content_key(),
    )
    return out, stages


# One two-host cluster per module: host spawn is the slow part.
@pytest.fixture(scope="module")
def cluster():
    with ClusterScheduler(hosts=2) as scheduler:
        yield scheduler


# ------------------------------------------------------------- parity grid
@pytest.mark.parametrize("fmt_name", ["mebcrs", "sgt16"])
@pytest.mark.parametrize("target", (1, 7, 10_000))
def test_fused_layer_cluster_parity_grid(cluster, fmt_name, target):
    csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(fmt_name)
    out, stages = _run_layer(cluster, csr, fmt, group, a_q, b_q, x_q, target=target)
    np.testing.assert_array_equal(out, base)
    assert set(stages) == {"sddmm_s", "edge_softmax_s", "spmm_s"}


def test_fused_layer_metrics_count_saved_round_trips_and_bytes(cluster):
    csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(seed=8)
    before = cluster.metrics.snapshot()
    out, _ = _run_layer(cluster, csr, fmt, group, a_q, b_q, x_q)
    np.testing.assert_array_equal(out, base)
    after = cluster.metrics.snapshot()
    assert after["layer_requests"] == before["layer_requests"] + 1
    # One cluster request instead of composition's two dispatches plus a
    # local softmax leg: two round trips banked per fused layer.
    assert after["round_trips_saved"] == before["round_trips_saved"] + 2
    saved = after["operand_bytes_saved"] - before["operand_bytes_saved"]
    # At least the SDDMM intermediate out + the attention CSR bundle back.
    v = fmt.partition.vector_size
    n_vec = fmt.vector_values.shape[0]
    assert saved >= n_vec * v * 4 + csr.nnz * 4
    assert after["requests"] == before["requests"] + 1


def test_fused_layer_single_and_zero_host_parity():
    csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(seed=9)
    with ClusterScheduler(hosts=1) as one:
        out, _ = _run_layer(one, csr, fmt, group, a_q, b_q, x_q)
        np.testing.assert_array_equal(out, base)
        assert one.stats_snapshot()["inline_fallbacks"] == 0
    with ClusterScheduler(hosts=0) as none:
        out, _ = _run_layer(none, csr, fmt, group, a_q, b_q, x_q)
        np.testing.assert_array_equal(out, base)
        snap = none.stats_snapshot()
        assert snap["inline_fallbacks"] > 0
        assert snap["tasks_sent"] == 0


# ------------------------------------------------------------- fault tolerance
def test_fused_layer_survives_dropped_connection_bit_identically():
    """Seeded FaultPlan failover: the connection drops at the first
    ``layer_task`` frame — the host re-dials, the shard resends, and the
    fused result is still exact."""
    csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(seed=10)
    plan = FaultPlan(seed=1)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.02, seed=1),
    ) as sched:
        victim = sched.affinity_host(csr.content_key())
        plan.drop_connection(nth=1, type="layer_task", scope=victim.host_id)
        out, _ = _run_layer(sched, csr, fmt, group, a_q, b_q, x_q)
        np.testing.assert_array_equal(out, base)
        assert plan.fired_kinds() == ["drop_connection"]
        snap = sched.stats_snapshot()
        assert snap["reconnects"] >= 1
        assert snap["host_deaths"] == 0


def test_fused_layer_fails_over_when_retries_exhaust():
    """The victim's retries run dry mid-layer: the shards fail over to the
    survivor (still protocol v4) and the output stays bit-identical."""
    csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(seed=11)
    plan = FaultPlan(seed=2)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.02, seed=2),
        auto_readmit=False,
    ) as sched:
        victim = sched.affinity_host(csr.content_key())
        plan.drop_connection(nth=1, type="layer_task", scope=victim.host_id)
        plan.refuse_connect(2, scope=victim.host_id)
        out, _ = _run_layer(sched, csr, fmt, group, a_q, b_q, x_q)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
        assert snap["host_deaths"] == 1
        assert snap["failovers"] >= 1 and snap["shards_failed_over"] >= 1


# --------------------------------------------------------- version negotiation
def test_v3_only_cluster_falls_back_to_composed_bit_identically():
    """``worker_protocol_version=3`` pins every worker below the
    ``layer_task`` frame: the head must run the composed per-kernel
    pipeline over the v3 wire — and match the fused output exactly."""
    csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(seed=12)
    with ClusterScheduler(hosts=2, worker_protocol_version=3) as sched:
        out, stages = _run_layer(sched, csr, fmt, group, a_q, b_q, x_q)
        np.testing.assert_array_equal(out, base)
        assert set(stages) == {"sddmm_s", "edge_softmax_s", "spmm_s"}
        snap = sched.metrics.snapshot()
        assert snap["layer_requests_composed"] == 1
        assert snap["layer_requests"] == 0
        # Composed over the cluster = two dispatched requests (SDDMM, SpMM).
        assert snap["requests"] == 2
        assert snap["tasks_sent"] >= 2


def test_mixed_v3_v4_cluster_routes_per_host_and_stays_bit_identical():
    """One v4 host + one externally spawned v3 host in the same cluster:
    layers whose affinity lands on the v4 host run fused, the v3 host's
    run composed — every one of them bit-identical to the reference."""
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)
    process, address = spawn_local_host(ctx, "legacy-v3", protocol_version=3)
    try:
        with ClusterScheduler(hosts=1) as sched:
            sched.add_host(address, host_id="legacy-v3")
            for seed in range(40, 48):
                csr, fmt, group, a_q, b_q, x_q, base = _layer_workload(
                    seed=seed, rows=90, cols=80
                )
                out, _ = _run_layer(sched, csr, fmt, group, a_q, b_q, x_q)
                np.testing.assert_array_equal(out, base)
            snap = sched.metrics.snapshot()
            # Rendezvous spread the eight keys over both hosts: both the
            # fused and the composed path ran, and nothing was dropped.
            assert snap["layer_requests"] >= 1
            assert snap["layer_requests_composed"] >= 1
            assert snap["layer_requests"] + snap["layer_requests_composed"] == 8
    finally:
        if process.is_alive():
            process.terminate()
        process.join(10)


# ------------------------------------------------------------ segment matmul
def test_cluster_segment_matmul_parity(cluster):
    rng = np.random.default_rng(31)
    data = rng.standard_normal((48, 9)).astype(np.float32)
    offsets = np.array([0, 10, 10, 30, 48], dtype=np.int64)
    weights = [rng.standard_normal((9, 6)).astype(np.float32) for _ in range(4)]
    ref = np.asarray(segment_matmul(data, offsets, weights), dtype=np.float32)
    before = cluster.metrics.snapshot()["segmm_requests"]
    out = cluster.run_segment_matmul(data, offsets, weights)
    np.testing.assert_array_equal(out, ref)
    assert cluster.metrics.snapshot()["segmm_requests"] == before + 1


def test_segment_matmul_falls_back_inline_on_v3_peers():
    rng = np.random.default_rng(33)
    data = rng.standard_normal((24, 5)).astype(np.float32)
    offsets = np.array([0, 9, 24], dtype=np.int64)
    weights = [rng.standard_normal((5, 4)).astype(np.float32) for _ in range(2)]
    ref = np.asarray(segment_matmul(data, offsets, weights), dtype=np.float32)
    with ClusterScheduler(hosts=1, worker_protocol_version=3) as sched:
        out = sched.run_segment_matmul(data, offsets, weights)
        np.testing.assert_array_equal(out, ref)
        # The v3 host never saw a segmm frame; the op ran in-parent.
        assert sched.stats_snapshot()["inline_fallbacks"] > 0
