"""Tests for the FlashSparse SDDMM kernel and the 16x1 baseline kernel."""

import numpy as np
import pytest

from repro.formats.mebcrs import MEBCRSMatrix
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import (
    algorithm1_offsets,
    sddmm_flash_cost,
    sddmm_flash_execute,
    split_output_tile,
)
from repro.kernels.sddmm_tcu16 import sddmm_tcu16_cost, sddmm_tcu16_execute

from helpers import random_csr


def reference_sddmm(csr, a, b, scale_by_mask=False):
    """Dense reference: (a @ b.T) masked to the sparsity pattern of csr."""
    dense_mask = csr.to_dense() != 0
    products = np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64).T
    out = np.where(dense_mask, products, 0.0)
    if scale_by_mask:
        out = out * csr.to_dense()
    return out


@pytest.mark.parametrize("precision", ["fp16", "tf32"])
@pytest.mark.parametrize("k_dense", [8, 32, 50])
def test_sddmm_flash_matches_reference(small_csr, rng, precision, k_dense):
    a = rng.standard_normal((small_csr.n_rows, k_dense))
    b = rng.standard_normal((small_csr.n_cols, k_dense))
    result = sddmm_flash_execute(small_csr, a, b, FlashSparseConfig(precision=precision))
    ref = reference_sddmm(small_csr, a, b)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=3e-2, atol=3e-2)
    assert result.useful_flops == 2 * small_csr.nnz * k_dense


def test_sddmm_flash_scale_by_mask(small_csr, rng):
    a = rng.standard_normal((small_csr.n_rows, 16))
    b = rng.standard_normal((small_csr.n_cols, 16))
    result = sddmm_flash_execute(small_csr, a, b, scale_by_mask=True)
    ref = reference_sddmm(small_csr, a, b, scale_by_mask=True)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=3e-2, atol=3e-2)


def test_sddmm_flash_output_preserves_sparsity_pattern(medium_csr, rng):
    a = rng.standard_normal((medium_csr.n_rows, 16))
    b = rng.standard_normal((medium_csr.n_cols, 16))
    result = sddmm_flash_execute(medium_csr, a, b)
    out_dense = result.output.to_dense()
    mask = medium_csr.to_dense() != 0
    assert np.all(out_dense[~mask] == 0.0)


def test_sddmm_flash_output_feeds_spmm(medium_csr, rng):
    """The paper's pipeline: the SDDMM output (same blocked layout) feeds SpMM."""
    from repro.kernels.spmm_flash import spmm_flash_execute

    a = rng.standard_normal((medium_csr.n_rows, 16))
    b = rng.standard_normal((medium_csr.n_cols, 16))
    sddmm_out = sddmm_flash_execute(medium_csr, a, b, FlashSparseConfig(precision="fp16"))
    dense_rhs = rng.standard_normal((medium_csr.n_cols, 32))
    spmm_out = spmm_flash_execute(sddmm_out.output, dense_rhs, FlashSparseConfig(precision="fp16"))
    ref_sparse = reference_sddmm(medium_csr, a, b)
    ref = ref_sparse @ dense_rhs
    np.testing.assert_allclose(spmm_out.values, ref, rtol=5e-2, atol=5e-2)


def test_sddmm_flash_validates_inputs(small_csr, rng):
    a = rng.standard_normal((small_csr.n_rows, 16))
    b = rng.standard_normal((small_csr.n_cols, 8))
    with pytest.raises(ValueError):
        sddmm_flash_execute(small_csr, a, b)  # mismatched K
    with pytest.raises(ValueError):
        sddmm_flash_execute(small_csr, a[: small_csr.n_rows - 1], a)
    with pytest.raises(ValueError):
        sddmm_flash_execute(small_csr, a, b, FlashSparseConfig(precision="fp16", swap_and_transpose=False))


@pytest.mark.parametrize("precision", ["fp16", "tf32"])
@pytest.mark.parametrize("k_dense", [16, 32])
def test_sddmm_flash_cost_matches_execute(medium_csr, rng, precision, k_dense):
    config = FlashSparseConfig(precision=precision)
    a = rng.standard_normal((medium_csr.n_rows, k_dense))
    b = rng.standard_normal((medium_csr.n_cols, k_dense))
    executed = sddmm_flash_execute(medium_csr, a, b, config)
    estimated = sddmm_flash_cost(medium_csr, k_dense, config)
    assert estimated.as_dict() == executed.counter.as_dict()


def test_sddmm_flash_cost_rejects_bad_k(medium_csr):
    with pytest.raises(ValueError):
        sddmm_flash_cost(medium_csr, 0)


def test_sddmm_output_block_is_8x16(medium_csr):
    """The swap-and-transpose SDDMM processes 16 nonzero vectors per output block."""
    counter = sddmm_flash_cost(medium_csr, 32, FlashSparseConfig(precision="fp16"))
    fmt = MEBCRSMatrix.from_csr(medium_csr, precision="fp16")
    counts = fmt.partition.vectors_per_window
    blocks = int(np.ceil(counts / 16).sum())
    assert counter.total_mma == blocks * (32 // 8)


# ---------------------------------------------------------------------------
# Algorithm 1 (output splitting)
# ---------------------------------------------------------------------------
def test_algorithm1_offsets_8x4_form_a_permutation():
    """Each thread's c0 target must be distinct (the warp writes 32 distinct slots)."""
    offsets = [algorithm1_offsets(tid, "8x4") for tid in range(32)]
    assert len(set(offsets)) == 32
    assert min(offsets) >= 0


def test_algorithm1_offsets_8x8_form_a_permutation():
    offsets = [algorithm1_offsets(tid, "8x8") for tid in range(32)]
    assert len(set(offsets)) == 32


def test_algorithm1_offsets_match_paper_examples():
    # Lines 3 and 8 of Algorithm 1 evaluated by hand.
    assert algorithm1_offsets(0, "8x8") == 0
    assert algorithm1_offsets(1, "8x8") == 16
    assert algorithm1_offsets(4, "8x8") == 1
    assert algorithm1_offsets(0, "8x4") == 0
    assert algorithm1_offsets(16, "8x4") == 4 + 32 - 4
    with pytest.raises(ValueError):
        algorithm1_offsets(32, "8x4")
    with pytest.raises(ValueError):
        algorithm1_offsets(0, "4x4")


def test_split_output_tile_tf32_makes_four_8x4_tiles(rng):
    tile = rng.standard_normal((8, 16))
    parts = split_output_tile(tile, "tf32")
    assert len(parts) == 4
    assert all(p.shape == (8, 4) for p in parts)
    np.testing.assert_array_equal(np.concatenate(parts, axis=1), tile)


def test_split_output_tile_fp16_makes_two_8x8_tiles(rng):
    tile = rng.standard_normal((8, 16))
    parts = split_output_tile(tile, "fp16")
    assert len(parts) == 2
    assert all(p.shape == (8, 8) for p in parts)
    np.testing.assert_array_equal(np.concatenate(parts, axis=1), tile)


def test_split_output_tile_validates_shape(rng):
    with pytest.raises(ValueError):
        split_output_tile(rng.standard_normal((16, 8)), "fp16")


# ---------------------------------------------------------------------------
# 16x1 SDDMM baseline
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("precision", ["fp16", "tf32"])
def test_sddmm_tcu16_matches_reference(small_csr, rng, precision):
    a = rng.standard_normal((small_csr.n_rows, 24))
    b = rng.standard_normal((small_csr.n_cols, 24))
    config = FlashSparseConfig(precision=precision, swap_and_transpose=False)
    result = sddmm_tcu16_execute(small_csr, a, b, config)
    ref = reference_sddmm(small_csr, a, b)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=3e-2, atol=3e-2)


def test_sddmm_tcu16_cost_matches_execute(medium_csr, rng):
    config = FlashSparseConfig(precision="tf32", swap_and_transpose=False)
    a = rng.standard_normal((medium_csr.n_rows, 32))
    b = rng.standard_normal((medium_csr.n_cols, 32))
    executed = sddmm_tcu16_execute(medium_csr, a, b, config)
    estimated = sddmm_tcu16_cost(medium_csr, 32, config)
    assert estimated.as_dict() == executed.counter.as_dict()


def test_flash_sddmm_uses_fewer_mma_than_16x1(medium_csr):
    """Figure 14 (SDDMM ablation): 8x1 needs fewer MMAs and less data access."""
    flash = sddmm_flash_cost(medium_csr, 32, FlashSparseConfig(precision="fp16"))
    v16 = sddmm_tcu16_cost(medium_csr, 32, FlashSparseConfig(precision="fp16", swap_and_transpose=False))
    assert flash.total_mma < v16.total_mma
    assert flash.data_access_bytes < v16.data_access_bytes
