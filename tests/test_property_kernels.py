"""Property-based tests for the kernels and the memory/MMA substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpu.memory import simulate_warp_load
from repro.gpu.mma import (
    MMA_M16N8K4_TF32,
    MMA_M16N8K8_FP16,
    mma_execute_swapped,
)
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import sddmm_flash_cost, sddmm_flash_execute
from repro.kernels.spmm_flash import spmm_flash_cost, spmm_flash_execute
from repro.kernels.spmm_tcu16 import spmm_tcu16_cost

from test_property_formats import sparse_matrices


@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32),
    access_bytes=st.sampled_from([2, 4, 8, 16]),
)
def test_coalescer_invariants(addresses, access_bytes):
    report = simulate_warp_load(addresses, access_bytes)
    # Transactions always cover the useful bytes, never exceed one per access
    # element-sector pair, and every size is a multiple of 32 capped at 128.
    assert report.bytes_moved >= min(report.useful_bytes, report.bytes_moved)
    assert all(32 <= s <= 128 and s % 32 == 0 for s in report.transaction_sizes)
    assert report.num_transactions <= len(addresses) * 2
    assert 0 < report.efficiency <= 1


@settings(max_examples=50, deadline=None)
@given(data=st.data(), shape=st.sampled_from([MMA_M16N8K8_FP16, MMA_M16N8K4_TF32]))
def test_swap_and_transpose_identity_property(data, shape):
    rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=2**31)))
    sparse_tile = rng.uniform(-2, 2, size=(shape.n, shape.k))
    dense_tile = rng.uniform(-2, 2, size=(shape.k, shape.m))
    out = mma_execute_swapped(sparse_tile, dense_tile, None, shape)
    np.testing.assert_allclose(out, sparse_tile @ dense_tile, rtol=5e-2, atol=5e-2)


@settings(max_examples=25, deadline=None)
@given(matrix=sparse_matrices(max_rows=64, max_cols=64, max_nnz=200), n_dense=st.sampled_from([8, 16, 48]))
def test_spmm_flash_correct_for_arbitrary_structure(matrix, n_dense):
    rng = np.random.default_rng(0)
    b = rng.standard_normal((matrix.n_cols, n_dense))
    result = spmm_flash_execute(matrix, b, FlashSparseConfig(precision="fp16"))
    reference = matrix.to_dense() @ b
    np.testing.assert_allclose(result.values, reference, rtol=5e-2, atol=5e-2)
    # Cost estimator agrees with the executed counter on every structure.
    cost = spmm_flash_cost(matrix, n_dense, FlashSparseConfig(precision="fp16"))
    assert cost.as_dict() == result.counter.as_dict()


@settings(max_examples=20, deadline=None)
@given(matrix=sparse_matrices(max_rows=48, max_cols=48, max_nnz=150), k_dense=st.sampled_from([8, 24]))
def test_sddmm_flash_correct_for_arbitrary_structure(matrix, k_dense):
    if matrix.nnz == 0:
        return
    rng = np.random.default_rng(1)
    a = rng.standard_normal((matrix.n_rows, k_dense))
    b = rng.standard_normal((matrix.n_cols, k_dense))
    result = sddmm_flash_execute(matrix, a, b, FlashSparseConfig(precision="fp16"))
    mask = matrix.to_dense() != 0
    reference = np.where(mask, a @ b.T, 0.0)
    np.testing.assert_allclose(result.output.to_dense(), reference, rtol=6e-2, atol=6e-2)
    cost = sddmm_flash_cost(matrix, k_dense, FlashSparseConfig(precision="fp16"))
    assert cost.as_dict() == result.counter.as_dict()


@settings(max_examples=30, deadline=None)
@given(matrix=sparse_matrices(max_rows=96, max_cols=96, max_nnz=300), n_dense=st.sampled_from([32, 128]))
def test_8x1_never_needs_more_mma_or_bytes_than_16x1(matrix, n_dense):
    """The central claim, as an invariant over arbitrary sparse structures."""
    if matrix.nnz == 0:
        return
    flash = spmm_flash_cost(matrix, n_dense, FlashSparseConfig(precision="fp16"))
    v16 = spmm_tcu16_cost(
        matrix, n_dense, FlashSparseConfig(precision="fp16", swap_and_transpose=False)
    )
    assert flash.total_mma <= v16.total_mma
    assert flash.bytes_read <= v16.bytes_read


@settings(max_examples=25, deadline=None)
@given(matrix=sparse_matrices(max_rows=64, max_cols=64, max_nnz=250), n_dense=st.sampled_from([16, 64]))
def test_counters_are_internally_consistent(matrix, n_dense):
    counter = spmm_flash_cost(matrix, n_dense, FlashSparseConfig(precision="fp16"))
    assert counter.transaction_bytes_moved >= counter.bytes_read
    assert counter.footprint_read_bytes <= counter.bytes_read
    assert counter.footprint_write_bytes <= counter.bytes_written
    assert counter.total_mma * 2 * 16 * 8 * 8 == counter.mma_flops()
