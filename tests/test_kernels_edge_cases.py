"""Edge-case and regression tests for the kernels and formats.

These exercise the boundaries the paper's design has to get right: residue
(partial) TC blocks, windows narrower than the vector size, dense-tile tails
when N is not a multiple of 16/8, single-row and single-column matrices, and
very dense matrices where every vector is full.
"""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import sddmm_flash_cost, sddmm_flash_execute
from repro.kernels.spmm_flash import spmm_flash_cost, spmm_flash_execute
from repro.kernels.spmm_tcu16 import spmm_tcu16_execute

from helpers import random_csr


def _check_spmm(csr, n_dense, precision="fp16", seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((csr.n_cols, n_dense))
    result = spmm_flash_execute(csr, b, FlashSparseConfig(precision=precision))
    ref = csr.to_dense() @ b
    np.testing.assert_allclose(result.values, ref, rtol=5e-2, atol=5e-2)
    cost = spmm_flash_cost(csr, n_dense, FlashSparseConfig(precision=precision))
    assert cost.as_dict() == result.counter.as_dict()
    return result


def test_single_row_matrix():
    csr = CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0, 0.0, 3.0]]))
    _check_spmm(csr, 16)


def test_single_column_matrix():
    csr = CSRMatrix.from_dense(np.arange(20, dtype=float).reshape(20, 1))
    _check_spmm(csr, 8)


def test_rows_not_multiple_of_window():
    # 21 rows -> last 8-row window has only 5 real rows.
    csr = random_csr(21, 33, 0.2, seed=1)
    _check_spmm(csr, 16)
    _check_spmm(csr, 16, precision="tf32")


def test_n_dense_not_multiple_of_tile():
    for n in (1, 7, 17, 30, 130):
        csr = random_csr(32, 32, 0.15, seed=2)
        _check_spmm(csr, n)


def test_fully_dense_matrix_has_no_zero_fill():
    dense = np.arange(1, 16 * 16 + 1, dtype=float).reshape(16, 16)
    csr = CSRMatrix.from_dense(dense)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    assert fmt.zero_fill == 0
    assert fmt.num_nonzero_vectors == 2 * 16  # two windows of 16 full vectors
    _check_spmm(csr, 16)


def test_diagonal_matrix_one_vector_per_window_column():
    csr = CSRMatrix.from_dense(np.diag(np.arange(1.0, 25.0)))
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    # Every window has exactly 8 nonzero vectors (one per diagonal element).
    assert np.all(fmt.partition.vectors_per_window == 8)
    _check_spmm(csr, 16)


def test_single_nonzero_matrix():
    dense = np.zeros((40, 40))
    dense[17, 23] = 5.0
    csr = CSRMatrix.from_dense(dense)
    result = _check_spmm(csr, 16)
    assert result.counter.total_mma == 1  # one block, one tile


def test_wide_rectangular_matrix():
    csr = random_csr(16, 300, 0.05, seed=3)
    _check_spmm(csr, 32)


def test_tall_rectangular_matrix():
    csr = random_csr(300, 16, 0.05, seed=4)
    _check_spmm(csr, 16)


def test_values_with_negatives_and_magnitudes():
    rng = np.random.default_rng(5)
    dense = np.zeros((24, 24))
    mask = rng.random((24, 24)) < 0.2
    dense[mask] = rng.uniform(-100, 100, size=mask.sum())
    csr = CSRMatrix.from_dense(dense)
    rng2 = np.random.default_rng(6)
    b = rng2.uniform(-10, 10, size=(24, 16))
    result = spmm_flash_execute(csr, b, FlashSparseConfig(precision="fp16"))
    np.testing.assert_allclose(result.values, dense @ b, rtol=5e-2, atol=2e-1)


def test_sddmm_k_smaller_than_mma_k():
    csr = random_csr(24, 24, 0.2, seed=7)
    rng = np.random.default_rng(8)
    a = rng.standard_normal((24, 3))
    b = rng.standard_normal((24, 3))
    result = sddmm_flash_execute(csr, a, b, FlashSparseConfig(precision="fp16"))
    ref = (a @ b.T) * (csr.to_dense() != 0)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=5e-2, atol=5e-2)
    cost = sddmm_flash_cost(csr, 3, FlashSparseConfig(precision="fp16"))
    assert cost.as_dict() == result.counter.as_dict()


def test_sddmm_single_window_many_vectors():
    # One 8-row window with 40 nonzero vectors -> multiple 8x16 output blocks.
    rng = np.random.default_rng(9)
    dense = np.zeros((8, 64))
    cols = rng.choice(64, size=40, replace=False)
    dense[rng.integers(0, 8, size=40), cols] = 1.0
    csr = CSRMatrix.from_dense(dense)
    a = rng.standard_normal((8, 16))
    b = rng.standard_normal((64, 16))
    result = sddmm_flash_execute(csr, a, b, FlashSparseConfig(precision="fp16"))
    ref = (a @ b.T) * (dense != 0)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=5e-2, atol=5e-2)


def test_16x1_kernel_with_fewer_than_16_rows():
    csr = random_csr(10, 30, 0.2, seed=10)
    rng = np.random.default_rng(11)
    b = rng.standard_normal((30, 24))
    result = spmm_tcu16_execute(
        csr, b, FlashSparseConfig(precision="tf32", swap_and_transpose=False)
    )
    np.testing.assert_allclose(result.values, csr.to_dense() @ b, rtol=5e-2, atol=5e-2)


def test_sgt16_single_window_structure():
    csr = random_csr(12, 40, 0.3, seed=12)
    fmt = SGT16Matrix.from_csr(csr)
    assert fmt.num_windows == 1
    assert fmt.partition.window_row_range(0) == (0, 12)


def test_duplicate_pattern_different_values_reuse_partition():
    base = random_csr(40, 40, 0.1, seed=13)
    other = base.with_values(np.arange(1, base.nnz + 1, dtype=np.float32))
    fmt_a = MEBCRSMatrix.from_csr(base, precision="fp16")
    fmt_b = MEBCRSMatrix.from_csr(other, precision="fp16")
    np.testing.assert_array_equal(fmt_a.column_indices, fmt_b.column_indices)
    np.testing.assert_array_equal(fmt_a.row_pointers, fmt_b.row_pointers)
    assert not np.allclose(fmt_a.vector_values, fmt_b.vector_values)


def test_cost_scaling_with_n_dense_is_linear_in_tiles():
    csr = random_csr(64, 64, 0.1, seed=14)
    c16 = spmm_flash_cost(csr, 16, FlashSparseConfig(precision="fp16"))
    c32 = spmm_flash_cost(csr, 32, FlashSparseConfig(precision="fp16"))
    c160 = spmm_flash_cost(csr, 160, FlashSparseConfig(precision="fp16"))
    assert c32.total_mma == 2 * c16.total_mma
    assert c160.total_mma == 10 * c16.total_mma


def test_precision_changes_block_width_and_mma_count():
    csr = random_csr(64, 64, 0.1, seed=15)
    fp16 = spmm_flash_cost(csr, 64, FlashSparseConfig(precision="fp16"))
    tf32 = spmm_flash_cost(csr, 64, FlashSparseConfig(precision="tf32"))
    # TF32 blocks are half as wide (k=4), so there are at least as many MMAs.
    assert tf32.total_mma >= fp16.total_mma
