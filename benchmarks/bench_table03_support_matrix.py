"""Table 3 — precision / granularity support matrix of all evaluated systems."""

import pytest

from bench_common import emit_table
from repro.baselines import BASELINES
from repro.precision.types import Precision


def run_table3():
    """One row per system: supported precisions and compute granularity."""
    rows = []
    for name, baseline in sorted(BASELINES.items()):
        rows.append(
            [
                name,
                "yes" if baseline.precision is Precision.FP32 else "no",
                "yes" if baseline.precision is Precision.TF32 else "no",
                "no",
                baseline.granularity,
            ]
        )
    rows.append(["FlashSparse", "no", "yes", "yes", "8x1 on TCU"])
    return rows


@pytest.mark.paper_experiment("Table 3")
def test_table03_support_matrix(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit_table(
        "table03_support_matrix",
        ["System", "FP32", "TF32", "FP16", "Granularity"],
        rows,
        title="Table 3 reproduction: precision support and granularity",
    )
    flash = rows[-1]
    assert flash[3] == "yes" and flash[4] == "8x1 on TCU"
    cuda = [r for r in rows[:-1] if r[4] == "CUDA cores"]
    tcu = [r for r in rows[:-1] if "TCU" in r[4]]
    assert len(cuda) == 7 and len(tcu) == 2
