"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index).  Each module exposes a
``run_*()`` function that produces the rows/series and a pytest-benchmark
test that executes it once, prints the resulting table and writes it to
``benchmarks/results/``.

The matrices are the synthetic SuiteSparse-like collection plus the Table-4
graph stand-ins (see :mod:`repro.datasets`); the kernel "times" are the cost
counters of the simulated kernels converted by the analytic performance
model.  Absolute numbers are therefore model outputs, not hardware
measurements — EXPERIMENTS.md compares their *shape* against the paper.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.baselines import get_baseline
from repro.datasets import suitesparse_like_collection
from repro.gpu.device import H100_PCIE, RTX4090, GPUSpec
from repro.kernels import (
    FLASH_SDDMM_PROFILE,
    FLASH_SPMM_PROFILE,
    sddmm_flash_cost,
    sddmm_tcu16_cost,
    spmm_flash_cost,
    spmm_tcu16_cost,
)
from repro.kernels.common import FlashSparseConfig
from repro.perfmodel import estimate_time, gflops, sddmm_useful_flops, spmm_useful_flops
from repro.utils.tables import format_table

#: Where the regenerated tables are written.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Devices of the paper's evaluation.
DEVICES: dict[str, GPUSpec] = {"H100": H100_PCIE, "RTX4090": RTX4090}

#: Number of synthetic matrices in the sweep (the paper uses 500 SuiteSparse
#: matrices; the default keeps the full benchmark run under a few minutes and
#: can be raised via the REPRO_BENCH_MATRICES environment variable).
DEFAULT_NUM_MATRICES = int(os.environ.get("REPRO_BENCH_MATRICES", "40"))


@functools.lru_cache(maxsize=None)
def evaluation_collection(num_matrices: int = DEFAULT_NUM_MATRICES):
    """The shared matrix collection (synthetic SuiteSparse-like + Table-4 graphs)."""
    return suitesparse_like_collection(num_matrices=num_matrices, seed=20250211, include_graphs=True)


@functools.lru_cache(maxsize=None)
def graph_only_collection():
    """Just the Table-4 graph stand-ins (used by Figures 1, 16 and Table 2)."""
    return [case for case in evaluation_collection() if case.family == "graph"]


# ---------------------------------------------------------------------------
# Kernel-time helpers (FlashSparse and baselines share these entry points)
# ---------------------------------------------------------------------------
def flash_spmm_time(matrix, n_dense: int, device: GPUSpec, precision: str = "fp16", coalesced: bool = True) -> float:
    """Estimated FlashSparse SpMM time."""
    config = FlashSparseConfig(precision=precision, coalesced=coalesced)
    counter = spmm_flash_cost(matrix, n_dense, config)
    return estimate_time(counter, device, FLASH_SPMM_PROFILE).total_time_s


def flash_sddmm_time(matrix, k_dense: int, device: GPUSpec, precision: str = "fp16") -> float:
    """Estimated FlashSparse SDDMM time."""
    counter = sddmm_flash_cost(matrix, k_dense, FlashSparseConfig(precision=precision))
    return estimate_time(counter, device, FLASH_SDDMM_PROFILE).total_time_s


def vector16_spmm_time(matrix, n_dense: int, device: GPUSpec, precision: str = "fp16") -> float:
    """Estimated SpMM time of the 16x1 ablation baseline (same profile as FlashSparse)."""
    config = FlashSparseConfig(precision=precision, swap_and_transpose=False)
    counter = spmm_tcu16_cost(matrix, n_dense, config)
    return estimate_time(counter, device, FLASH_SPMM_PROFILE).total_time_s


def vector16_sddmm_time(matrix, k_dense: int, device: GPUSpec, precision: str = "fp16") -> float:
    """Estimated SDDMM time of the 16x1 ablation baseline."""
    config = FlashSparseConfig(precision=precision, swap_and_transpose=False)
    counter = sddmm_tcu16_cost(matrix, k_dense, config)
    return estimate_time(counter, device, FLASH_SDDMM_PROFILE).total_time_s


def baseline_spmm_time(name: str, matrix, n_dense: int, device: GPUSpec) -> float:
    """Estimated SpMM time of a named baseline."""
    baseline = get_baseline(name)
    counter = baseline.spmm_cost(matrix, n_dense)
    return estimate_time(counter, device, baseline.profile).total_time_s


def baseline_sddmm_time(name: str, matrix, k_dense: int, device: GPUSpec) -> float:
    """Estimated SDDMM time of a named baseline."""
    baseline = get_baseline(name)
    counter = baseline.sddmm_cost(matrix, k_dense)
    return estimate_time(counter, device, baseline.profile).total_time_s


def spmm_gflops(matrix, time_s: float, n_dense: int) -> float:
    """SpMM throughput for a matrix and an estimated time."""
    return gflops(spmm_useful_flops(matrix.nnz, n_dense), time_s)


def sddmm_gflops(matrix, time_s: float, k_dense: int) -> float:
    """SDDMM throughput for a matrix and an estimated time."""
    return gflops(sddmm_useful_flops(matrix.nnz, k_dense), time_s)


# ---------------------------------------------------------------------------
# Output helpers
# ---------------------------------------------------------------------------
def emit_table(name: str, headers, rows, title: str) -> str:
    """Format, print and persist one regenerated table."""
    text = format_table(headers, rows, title=title)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / f"{name}.txt"
    out_path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {out_path}]")
    return text
