"""Table 5 — detailed SpMM speedup distribution of FlashSparse over each baseline.

The paper buckets the per-matrix speedups of FlashSparse (FP16) over TC-GNN,
DTC-SpMM, RoDe, Sputnik and GE-SpMM at N = 128 into <1, 1-1.5, 1.5-2 and >=2,
and reports the geometric mean and maximum, on both GPUs.
"""

import pytest

from bench_common import (
    DEVICES,
    baseline_spmm_time,
    emit_table,
    evaluation_collection,
    flash_spmm_time,
)
from repro.perfmodel import speedup_distribution

N_DENSE = 128
TABLE5_BASELINES = ("TC-GNN", "DTC-SpMM", "RoDe", "Sputnik", "GE-SpMM")


def run_table5():
    """Speedup distribution buckets per device and baseline."""
    cases = evaluation_collection()
    rows = []
    distributions = {}
    for device_name, device in DEVICES.items():
        flash_times = {
            case.name: flash_spmm_time(case.matrix, N_DENSE, device, precision="fp16")
            for case in cases
        }
        for baseline in TABLE5_BASELINES:
            speedups = [
                baseline_spmm_time(baseline, case.matrix, N_DENSE, device) / flash_times[case.name]
                for case in cases
            ]
            dist = speedup_distribution(speedups)
            distributions[(device_name, baseline)] = dist
            rows.append(
                [
                    device_name,
                    baseline,
                    dist["<1"],
                    dist["1-1.5"],
                    dist["1.5-2"],
                    dist[">=2"],
                    dist["geomean"],
                    dist["max"],
                ]
            )
    return rows, distributions


@pytest.mark.paper_experiment("Table 5")
def test_table05_spmm_speedup_distribution(benchmark):
    rows, distributions = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    emit_table(
        "table05_spmm_speedups",
        ["Device", "Baseline", "<1 %", "1-1.5 %", "1.5-2 %", ">=2 %", "Geomean", "Max"],
        rows,
        title="Table 5 reproduction: FlashSparse-FP16 SpMM speedup distribution (N=128)",
    )
    for (device, baseline), dist in distributions.items():
        # FlashSparse wins on (almost) every matrix against the TCU baselines
        # and on the clear majority against the CUDA-core baselines.
        if baseline in ("TC-GNN", "DTC-SpMM"):
            assert dist["<1"] <= 5.0, (device, baseline)
            assert dist["geomean"] > 1.5
        else:
            assert dist["geomean"] > 1.0
        assert dist["max"] >= dist["geomean"]
    # TC-GNN is the weakest baseline (largest geomean speedup) on both devices.
    for device in DEVICES:
        tcgnn = distributions[(device, "TC-GNN")]["geomean"]
        assert all(
            tcgnn >= distributions[(device, b)]["geomean"] for b in TABLE5_BASELINES if b != "TC-GNN"
        )
