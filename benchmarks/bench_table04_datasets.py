"""Table 4 — graph dataset statistics (paper values vs generated stand-ins)."""

import pytest

from bench_common import emit_table
from repro.datasets.graphs import graph_table


def run_table4():
    """Paper-reported vs stand-in statistics for every Table-4 graph."""
    rows = []
    for entry in graph_table():
        rows.append(
            [
                entry["name"],
                entry["paper_vertices"],
                entry["paper_edges"],
                entry["paper_avg_row_length"],
                entry["standin_vertices"],
                entry["standin_edges"],
                entry["standin_avg_row_length"],
            ]
        )
    return rows


@pytest.mark.paper_experiment("Table 4")
def test_table04_datasets(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    emit_table(
        "table04_datasets",
        [
            "Dataset",
            "#Vertex (paper)",
            "#Edge (paper)",
            "AvgRowLength (paper)",
            "#Vertex (stand-in)",
            "#Edge (stand-in)",
            "AvgRowLength (stand-in)",
        ],
        rows,
        title="Table 4 reproduction: graph datasets and their synthetic stand-ins",
    )
    assert len(rows) >= 14
    # The stand-ins must preserve the ordering of the extremes: Reddit is the
    # densest graph, Yeast/Ell are among the sparsest.
    by_name = {row[0]: row for row in rows}
    assert by_name["Reddit"][6] > by_name["Ell"][6]
    assert by_name["Reddit"][6] > by_name["Yeast"][6]
