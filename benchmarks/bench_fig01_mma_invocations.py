"""Figure 1 — MMA invocations at 16x1 vs 8x1 vector size (SpMM, N = 16).

The paper counts the MMA instructions an SpMM needs on five large graph
datasets when the sparse matrix is partitioned into 16x1 vectors (TC-GNN /
DTC-SpMM) versus 8x1 vectors (FlashSparse), with a 16-column dense matrix,
and reports a ~43 % average reduction.
"""

import pytest

from bench_common import emit_table, graph_only_collection
from repro.formats.stats import mma_count_spmm

#: Dense-matrix width used in Figure 1.
N_DENSE = 16
#: Graphs highlighted by Figure 1 (IGB-large is replaced by IGB-medium's
#: stand-in; the full-size graph is out of reach offline).
FIGURE1_GRAPHS = ("Reddit", "AmazonProducts", "OGBProducts", "IGB-medium", "IGB-small")


def run_figure1():
    """Count SpMM MMA invocations for both vector sizes on the Figure-1 graphs."""
    cases = {case.name: case.matrix for case in graph_only_collection()}
    rows = []
    for name in FIGURE1_GRAPHS:
        matrix = cases[name]
        mma16 = mma_count_spmm(matrix, k=8, n_dense=N_DENSE, vector_size=16)
        mma8 = mma_count_spmm(matrix, k=8, n_dense=N_DENSE, vector_size=8)
        reduction = 100.0 * (1.0 - mma8 / mma16) if mma16 else 0.0
        rows.append([name, matrix.nnz, mma16, mma8, reduction])
    return rows


@pytest.mark.paper_experiment("Figure 1")
def test_fig01_mma_invocations(benchmark):
    rows = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    emit_table(
        "fig01_mma_invocations",
        ["Graph", "nnz", "MMA 16x1", "MMA 8x1 (FlashSparse)", "Reduction %"],
        rows,
        title="Figure 1 reproduction: SpMM MMA invocations (N=16)",
    )
    # The paper reports 37-47% reductions; require every graph to show a
    # substantial reduction and the average to be in a compatible band.
    reductions = [row[4] for row in rows]
    assert all(r > 15.0 for r in reductions)
    assert 25.0 <= sum(reductions) / len(reductions) <= 60.0
