"""Fused layer serving benchmark — protocol v4 vs forced-v3 composed.

A repeated AGNN layer workload (fresh feature panels every iteration, as
in training — so the attention matrix differs per layer evaluation) runs
twice against a two-host cluster server:

* **fused** — protocol v4: each layer is one ``submit_layer`` request;
  the worker executes SDDMM → scale → softmax → SpMM in place and only
  the output rows travel.
* **composed** — workers capped at protocol v3: each layer is the classic
  three requests (``submit_sddmm`` → ``submit_edge_softmax`` →
  ``submit_spmm``), shipping the SDDMM intermediate back to the client
  and a fresh attention-matrix bundle back out to a worker every layer.

Three CI gates ride on it:

* **bit-equality** — both runs produce bit-identical layer outputs for
  every iteration (fusion must never cost numerics);
* **round trips** — the fused run does exactly 1 serve request per layer,
  the composed run exactly 3 (the 3 → 1 collapse of the refactor), and
  the fused server banks ``round_trips_saved == 2 × layers``;
* **operand bytes** — the composed run moves ≥ ``MIN_BYTE_SAVINGS``× more
  transport bytes per layer than the fused run (the per-layer attention
  bundle + SDDMM intermediate the fused path never ships).

Results land in ``benchmarks/results/layer_fused.json`` for the CI
artifact upload.  Run standalone (``python benchmarks/bench_layer_fused.py``)
or through pytest.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* NumPy loads: the benchmark
# compares transport behaviour, and oversubscribed BLAS threads inside the
# worker hosts would only add scheduler noise.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import json
from pathlib import Path

import numpy as np

from repro.datasets.generators import power_law_matrix
from repro.gnn import ServedBackend
from repro.serve import Server

#: AGNN-style workload: a ~45k-edge power-law graph, feature width N.
NUM_NODES = 1500
AVG_ROW_LENGTH = 30
FEATURE_WIDTH = 32
#: Layers per iteration and iterations (fresh features each iteration).
LAYERS = 2
ITERATIONS = 4
BETA = 0.8
#: Byte gate: composed transport bytes per layer over fused.
MIN_BYTE_SAVINGS = 2.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "layer_fused.json"


def _drive(server: Server, csr, mode: str) -> tuple[list, "object"]:
    """Run the layer workload; returns (per-iteration outputs, OpStats)."""
    backend = ServedBackend(server=server, adjacency=csr, mode=mode)
    rng = np.random.default_rng(2025)  # same panel sequence for both modes
    outputs = []
    for _ in range(ITERATIONS):
        h = rng.standard_normal((NUM_NODES, FEATURE_WIDTH)).astype(np.float32)
        for _layer in range(LAYERS):
            h = backend.agnn_forward(h, beta=BETA)
        outputs.append(h)
    return outputs, backend.stats


def _measure(mode: str, csr) -> tuple[dict, list]:
    options = {} if mode == "fused" else {"worker_protocol_version": 3}
    with Server(
        backend="cluster", hosts=2, device="rtx4090", cluster_options=options
    ) as server:
        outputs, stats = _drive(server, csr, mode)
        snap = server.snapshot()
        cluster = server.scheduler.stats_snapshot()
    layers = ITERATIONS * LAYERS
    transport = cluster["bytes_sent"] + cluster["bytes_received"]
    return {
        "mode": mode,
        "layers": layers,
        "serve_requests": snap.requests_submitted,
        "round_trips_per_layer": snap.requests_submitted / layers,
        "layer_requests": snap.layer_requests,
        "round_trips_saved": snap.round_trips_saved,
        "operand_bytes_saved": snap.operand_bytes_saved,
        "cluster_requests": cluster["requests"],
        "bytes_sent": cluster["bytes_sent"],
        "bytes_received": cluster["bytes_received"],
        "bytes_per_layer": transport / layers,
        "store_hits": cluster["store_hits"],
        "task_failures": cluster["task_failures"],
        "stage_latency_ms": {
            stage: stats_.mean_s * 1e3
            for stage, stats_ in snap.stage_latency.items()
        },
        "opstats": {
            "sddmm_calls": stats.sddmm_calls,
            "edge_softmax_calls": stats.edge_softmax_calls,
            "spmm_calls": stats.spmm_calls,
        },
    }, outputs


def run_layer_fused() -> dict:
    csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=7)
    fused, fused_outs = _measure("fused", csr)
    composed, composed_outs = _measure("composed", csr)
    for fused_out, composed_out in zip(fused_outs, composed_outs):
        np.testing.assert_array_equal(fused_out, composed_out)
    report = {
        "config": {
            "num_nodes": NUM_NODES,
            "avg_row_length": AVG_ROW_LENGTH,
            "nnz": csr.nnz,
            "feature_width": FEATURE_WIDTH,
            "layers_per_iteration": LAYERS,
            "iterations": ITERATIONS,
        },
        "fused": fused,
        "composed": composed,
        "bit_identical": True,  # assert_array_equal above would have raised
        "byte_savings": composed["bytes_per_layer"]
        / max(1e-9, fused["bytes_per_layer"]),
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def _emit(report: dict) -> None:
    rows = [
        [
            run["mode"],
            run["round_trips_per_layer"],
            run["cluster_requests"],
            run["bytes_per_layer"] / 1e3,
            run["bytes_sent"] / 1e6,
            run["bytes_received"] / 1e6,
        ]
        for run in (report["fused"], report["composed"])
    ]
    rows.append(
        ["savings (composed / fused)", 3.0, 0, report["byte_savings"], 0.0, 0.0]
    )
    try:
        from bench_common import emit_table

        emit_table(
            "layer_fused",
            [
                "Serving mode",
                "Round trips/layer",
                "Cluster requests",
                "kB/layer | x",
                "MB sent",
                "MB received",
            ],
            rows,
            title="Fused v4 layer serving vs forced-v3 composed: "
            f"{report['config']['iterations']}x{report['config']['layers_per_iteration']} "
            f"AGNN layers, {report['config']['nnz']} edges",
        )
    except ImportError:  # standalone without the harness on sys.path
        for row in rows:
            print(
                f"{row[0]:>28}: {row[1]:5.2f} rt/layer, {row[3]:9.1f} kB/layer"
            )
    print(f"[fused layer JSON written to {RESULTS_JSON}]")


def _check(report: dict) -> None:
    fused, composed = report["fused"], report["composed"]
    layers = fused["layers"]
    assert fused["round_trips_per_layer"] == 1.0, (
        f"fused serving must be one request per layer, got "
        f"{fused['round_trips_per_layer']:.2f}"
    )
    assert composed["round_trips_per_layer"] == 3.0, (
        f"composed serving must pay its three requests per layer, got "
        f"{composed['round_trips_per_layer']:.2f}"
    )
    assert fused["layer_requests"] == layers
    assert fused["round_trips_saved"] == 2 * layers
    # The logical operator accounting is transport-independent.
    assert fused["opstats"] == composed["opstats"]
    assert fused["task_failures"] == 0 and composed["task_failures"] == 0
    assert report["byte_savings"] >= MIN_BYTE_SAVINGS, (
        f"fused transport savings regressed: composed moves "
        f"{composed['bytes_per_layer'] / 1e3:.0f} kB/layer vs fused "
        f"{fused['bytes_per_layer'] / 1e3:.0f} kB/layer — "
        f"{report['byte_savings']:.2f}x < {MIN_BYTE_SAVINGS}x"
    )


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_layer_fused(benchmark):
        report = benchmark.pedantic(run_layer_fused, rounds=1, iterations=1)
        _emit(report)
        _check(report)

except ImportError:

    def test_layer_fused():
        report = run_layer_fused()
        _emit(report)
        _check(report)


if __name__ == "__main__":
    result = run_layer_fused()
    _emit(result)
    _check(result)
    print("OK: fused layer benchmark complete")
