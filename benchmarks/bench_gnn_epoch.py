"""GNN epoch benchmark — vectorized vs reference edge softmax wall-clock.

PR 1 removed the interpreter-bound MMA loops; after that, a training epoch
of an attention GNN was dominated by the per-row Python loops of the
edge-softmax forward/backward.  Those loops now live on only as the
``reference`` oracle of :mod:`repro.gnn.backends`, with the default path
running the vectorized segment ops of :mod:`repro.ops`.

This benchmark records, on a ~50k-edge power-law graph:

* best-of-3 wall-clock of one full AGNN training epoch (forward, loss,
  backward, Adam step) under each edge-softmax implementation, and
* best-of-3 wall-clock of the edge-softmax forward+backward path itself.

It doubles as a regression gate: the vectorized edge-softmax path must stay
at least 5× faster than the reference loops.

Run standalone (``python benchmarks/bench_gnn_epoch.py``) or through pytest
(``pytest benchmarks/bench_gnn_epoch.py --benchmark-only``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.generators import power_law_matrix
from repro.gnn import autograd as ag
from repro.gnn.autograd import Tensor
from repro.gnn.backends import make_backend
from repro.gnn.models import AGNN
from repro.gnn.train import Adam

#: Graph scale: ~50k edges, the regime where the per-row loops dominated.
NUM_NODES = 6000
AVG_ROW_LENGTH = 12
#: Feature / hidden dimensions of the epoch model (paper's AGNN uses 32).
NUM_FEATURES = 32
HIDDEN = 32
NUM_CLASSES = 7
#: Minimum vectorized-over-reference edge-softmax speedup the subsystem
#: must sustain.
MIN_EDGE_SOFTMAX_SPEEDUP = 5.0
#: Wall-clock samples per measurement; best-of-N keeps the CI gate robust
#: to scheduling noise on shared runners.
TIMING_ROUNDS = 3


def _best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workload():
    csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=42)
    rng = np.random.default_rng(7)
    features = rng.standard_normal((NUM_NODES, NUM_FEATURES)).astype(np.float32)
    labels = rng.integers(0, NUM_CLASSES, size=NUM_NODES)
    return csr, features, labels


def _epoch_runner(backend, features: np.ndarray, labels: np.ndarray):
    """One AGNN training epoch (forward, loss, backward, optimiser step)."""
    model = AGNN(NUM_FEATURES, HIDDEN, NUM_CLASSES, num_attention_layers=1, dropout=0.0, seed=3)
    optimiser = Adam(model.parameters(), lr=0.01)
    x = Tensor(features)

    def epoch() -> None:
        optimiser.zero_grad()
        loss = ag.nll_loss(model(backend, x), labels)
        loss.backward()
        optimiser.step()

    return epoch


def run_gnn_epoch():
    """Rows of (measurement, reference s, vectorized s, speedup)."""
    csr, features, labels = _workload()
    rng = np.random.default_rng(20260730)
    logits = rng.standard_normal(csr.nnz)
    grad_out = rng.standard_normal(csr.nnz).astype(np.float32)

    backends = {}
    for impl in ("reference", "vectorized"):
        backend = make_backend("flashsparse-fp16", csr)
        backend.edge_softmax_impl = impl
        backends[impl] = backend

    # --- the edge-softmax path itself (the ≥5× gate) ----------------------
    def softmax_path(backend):
        def run() -> None:
            softmax, _ = backend.edge_softmax_forward(logits)
            backend.edge_softmax_backward(softmax, grad_out)

        return run

    softmax_path(backends["vectorized"])()  # warm caches / BLAS init
    es_ref = _best_of(softmax_path(backends["reference"]))
    es_vec = _best_of(softmax_path(backends["vectorized"]))

    # --- one full training epoch ------------------------------------------
    epoch_vec = _epoch_runner(backends["vectorized"], features, labels)
    epoch_ref = _epoch_runner(backends["reference"], features, labels)
    epoch_vec()  # warm (adjacency transposes, format caches)
    epoch_ref()
    t_epoch_ref = _best_of(epoch_ref)
    t_epoch_vec = _best_of(epoch_vec)

    edges = csr.nnz
    return [
        [f"edge-softmax fwd+bwd ({edges} edges)", es_ref, es_vec, es_ref / es_vec],
        [f"AGNN epoch ({edges} edges)", t_epoch_ref, t_epoch_vec, t_epoch_ref / t_epoch_vec],
    ]


def _emit(rows) -> None:
    from bench_common import emit_table

    emit_table(
        "gnn_epoch",
        ["Measurement", "Reference (s)", "Vectorized (s)", "Speedup"],
        rows,
        title="GNN training epoch: vectorized segment-ops edge softmax vs per-row loops",
    )


def _check(rows) -> None:
    es_speedup = rows[0][3]
    assert es_speedup >= MIN_EDGE_SOFTMAX_SPEEDUP, (
        f"vectorized edge softmax regressed: {es_speedup:.1f}x < "
        f"{MIN_EDGE_SOFTMAX_SPEEDUP:.0f}x over the per-row reference loops"
    )


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_gnn_epoch(benchmark):
        rows = benchmark.pedantic(run_gnn_epoch, rounds=1, iterations=1)
        _emit(rows)
        _check(rows)

except ImportError:

    def test_gnn_epoch():
        rows = run_gnn_epoch()
        _emit(rows)
        _check(rows)


if __name__ == "__main__":
    result_rows = run_gnn_epoch()
    try:
        _emit(result_rows)
    except ImportError:  # standalone invocation without the harness on sys.path
        for row in result_rows:
            print(
                f"{row[0]:>40}: reference {row[1]:.4f}s  vectorized {row[2]:.4f}s  {row[3]:.1f}x"
            )
    _check(result_rows)
    print(
        f"OK: vectorized edge softmax >= {MIN_EDGE_SOFTMAX_SPEEDUP:.0f}x faster "
        "than the per-row reference loops"
    )
