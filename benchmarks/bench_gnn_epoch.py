"""GNN epoch benchmark — vectorized vs reference edge softmax wall-clock.

PR 1 removed the interpreter-bound MMA loops; after that, a training epoch
of an attention GNN was dominated by the per-row Python loops of the
edge-softmax forward/backward.  Those loops now live on only as the
``reference`` oracle of :mod:`repro.gnn.backends`, with the default path
running the vectorized segment ops of :mod:`repro.ops`.

This benchmark records:

* best-of-3 wall-clock of the edge-softmax forward+backward path across a
  sweep of graph sizes (the speedup must hold across scales, not at one
  cherry-picked size), and
* best-of-3 wall-clock of one full AGNN training epoch (forward, loss,
  backward, Adam step) under each edge-softmax implementation at the
  largest swept size.

It doubles as two regression gates: the vectorized edge-softmax path must
stay at least 5× faster than the reference loops at the headline ~50k-edge
size, and the chunked streaming engine's peak allocation (tracemalloc) must
stay bounded by its byte budget — the O(chunk·v·N) claim of PR 2, CI-
enforced rather than taken on faith.

Run standalone (``python benchmarks/bench_gnn_epoch.py``) or through pytest
(``pytest benchmarks/bench_gnn_epoch.py --benchmark-only``).
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.datasets.generators import power_law_matrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.gnn import autograd as ag
from repro.gnn.autograd import Tensor
from repro.gnn.backends import make_backend
from repro.gnn.models import AGNN
from repro.gnn.train import Adam
from repro.kernels.engine import spmm_batched, spmm_bytes_per_block
from repro.precision.types import Precision

#: Graph scale: ~50k edges, the regime where the per-row loops dominated.
NUM_NODES = 6000
AVG_ROW_LENGTH = 12
#: Graph-size sweep for the edge-softmax gate (nodes; ~12 edges each).
SWEEP_NODES = (1500, 3000, 6000)
#: Feature / hidden dimensions of the epoch model (paper's AGNN uses 32).
NUM_FEATURES = 32
HIDDEN = 32
NUM_CLASSES = 7
#: Minimum vectorized-over-reference edge-softmax speedup the subsystem
#: must sustain.
MIN_EDGE_SOFTMAX_SPEEDUP = 5.0
#: Wall-clock samples per measurement; best-of-N keeps the CI gate robust
#: to scheduling noise on shared runners.
TIMING_ROUNDS = 3


def _best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workload():
    csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=42)
    rng = np.random.default_rng(7)
    features = rng.standard_normal((NUM_NODES, NUM_FEATURES)).astype(np.float32)
    labels = rng.integers(0, NUM_CLASSES, size=NUM_NODES)
    return csr, features, labels


def _epoch_runner(backend, features: np.ndarray, labels: np.ndarray):
    """One AGNN training epoch (forward, loss, backward, optimiser step)."""
    model = AGNN(NUM_FEATURES, HIDDEN, NUM_CLASSES, num_attention_layers=1, dropout=0.0, seed=3)
    optimiser = Adam(model.parameters(), lr=0.01)
    x = Tensor(features)

    def epoch() -> None:
        optimiser.zero_grad()
        loss = ag.nll_loss(model(backend, x), labels)
        loss.backward()
        optimiser.step()

    return epoch


def _softmax_speedup(num_nodes: int) -> list:
    """One sweep point: (label, reference s, vectorized s, speedup)."""
    csr = power_law_matrix(num_nodes, avg_row_length=AVG_ROW_LENGTH, seed=42)
    rng = np.random.default_rng(20260730 + num_nodes)
    logits = rng.standard_normal(csr.nnz)
    grad_out = rng.standard_normal(csr.nnz).astype(np.float32)

    def softmax_path(impl):
        backend = make_backend("flashsparse-fp16", csr)
        backend.edge_softmax_impl = impl

        def run() -> None:
            softmax, _ = backend.edge_softmax_forward(logits)
            backend.edge_softmax_backward(softmax, grad_out)

        return run

    softmax_path("vectorized")()  # warm caches / BLAS init
    es_ref = _best_of(softmax_path("reference"))
    es_vec = _best_of(softmax_path("vectorized"))
    return [
        f"edge-softmax fwd+bwd ({csr.nnz} edges)",
        es_ref,
        es_vec,
        es_ref / es_vec,
    ]


def check_chunked_engine_memory_peak() -> dict:
    """Tracemalloc gate for the streaming engine's O(chunk·v·N) claim.

    Runs the headline-size SpMM once one-shot and once under a byte budget
    ~20× smaller than the one-shot intermediate, and asserts the budgeted
    run's peak allocation stays within budget + output + slack while the
    one-shot intermediate alone dwarfs that allowance.
    """
    csr = power_law_matrix(4000, avg_row_length=AVG_ROW_LENGTH, seed=7)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    n_dense = 128
    rng = np.random.default_rng(7)
    b_q = rng.standard_normal((csr.n_cols, n_dense)).astype(np.float32)

    batch = fmt.blocks_as_arrays()  # exclude one-time packing from the peak
    bytes_per_block = spmm_bytes_per_block(fmt.vector_size, fmt.k, n_dense)
    one_shot_bytes = batch.num_blocks * bytes_per_block
    budget = max(bytes_per_block, one_shot_bytes // 20)

    spmm_batched(fmt, b_q, Precision.FP16, max_intermediate_bytes=budget)  # warm
    tracemalloc.start()
    try:
        tracemalloc.clear_traces()
        spmm_batched(fmt, b_q, Precision.FP16, max_intermediate_bytes=budget)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    out_bytes = csr.n_rows * n_dense * 4
    allowance = 2 * budget + out_bytes + 2**20
    assert peak <= allowance, (
        f"chunked engine peak {peak} B exceeds its allowance {allowance} B "
        f"(budget {budget} B, one-shot needs {one_shot_bytes} B)"
    )
    assert one_shot_bytes > allowance, "memory gate lost its teeth"
    return {
        "budget_bytes": budget,
        "peak_bytes": peak,
        "one_shot_bytes": one_shot_bytes,
    }


def run_gnn_epoch():
    """Rows of (measurement, reference s, vectorized s, speedup)."""
    # --- the edge-softmax path across graph sizes (≥5× gate at 6k) --------
    rows = [_softmax_speedup(nodes) for nodes in SWEEP_NODES]

    # --- one full training epoch at the headline size ---------------------
    csr, features, labels = _workload()
    backends = {}
    for impl in ("reference", "vectorized"):
        backend = make_backend("flashsparse-fp16", csr)
        backend.edge_softmax_impl = impl
        backends[impl] = backend
    epoch_vec = _epoch_runner(backends["vectorized"], features, labels)
    epoch_ref = _epoch_runner(backends["reference"], features, labels)
    epoch_vec()  # warm (adjacency transposes, format caches)
    epoch_ref()
    t_epoch_ref = _best_of(epoch_ref)
    t_epoch_vec = _best_of(epoch_vec)
    rows.append(
        [
            f"AGNN epoch ({csr.nnz} edges)",
            t_epoch_ref,
            t_epoch_vec,
            t_epoch_ref / t_epoch_vec,
        ]
    )

    # --- memory gate for the chunked engine --------------------------------
    mem = check_chunked_engine_memory_peak()
    rows.append(
        [
            f"chunked-engine peak (budget {mem['budget_bytes']} B)",
            mem["one_shot_bytes"] / 1e6,
            mem["peak_bytes"] / 1e6,
            mem["one_shot_bytes"] / max(1, mem["peak_bytes"]),
        ]
    )
    return rows


def _emit(rows) -> None:
    from bench_common import emit_table

    emit_table(
        "gnn_epoch",
        ["Measurement", "Reference (s | MB)", "Vectorized (s | MB)", "Speedup / ratio"],
        rows,
        title="GNN training epoch: vectorized segment-ops edge softmax vs "
        "per-row loops (size sweep) + chunked-engine memory gate (MB row)",
    )


def _check(rows) -> None:
    # The ≥5× gate applies at the headline ~50k-edge size (last sweep point);
    # smaller sizes are reported for the scaling picture but not gated —
    # fixed overheads eat more of the win there.
    es_speedup = rows[len(SWEEP_NODES) - 1][3]
    assert es_speedup >= MIN_EDGE_SOFTMAX_SPEEDUP, (
        f"vectorized edge softmax regressed: {es_speedup:.1f}x < "
        f"{MIN_EDGE_SOFTMAX_SPEEDUP:.0f}x over the per-row reference loops"
    )
    # Every sweep point must still win outright.
    for row in rows[: len(SWEEP_NODES)]:
        assert row[3] > 1.0, f"vectorized path lost at {row[0]}: {row[3]:.2f}x"


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_gnn_epoch(benchmark):
        rows = benchmark.pedantic(run_gnn_epoch, rounds=1, iterations=1)
        _emit(rows)
        _check(rows)

except ImportError:

    def test_gnn_epoch():
        rows = run_gnn_epoch()
        _emit(rows)
        _check(rows)


if __name__ == "__main__":
    result_rows = run_gnn_epoch()
    try:
        _emit(result_rows)
    except ImportError:  # standalone invocation without the harness on sys.path
        for row in result_rows:
            print(
                f"{row[0]:>40}: reference {row[1]:.4f}s  vectorized {row[2]:.4f}s  {row[3]:.1f}x"
            )
    _check(result_rows)
    print(
        f"OK: vectorized edge softmax >= {MIN_EDGE_SOFTMAX_SPEEDUP:.0f}x faster "
        "than the per-row reference loops"
    )
