"""Table 6 — SDDMM speedup distribution of FlashSparse over TC-GNN and RoDe (N=32)."""

import pytest

from bench_common import (
    DEVICES,
    baseline_sddmm_time,
    emit_table,
    evaluation_collection,
    flash_sddmm_time,
)
from repro.perfmodel import speedup_distribution

K_DENSE = 32
TABLE6_BASELINES = ("TC-GNN", "RoDe")


def run_table6():
    """Speedup distribution buckets per device and baseline."""
    cases = evaluation_collection()
    rows = []
    distributions = {}
    for device_name, device in DEVICES.items():
        flash_times = {
            case.name: flash_sddmm_time(case.matrix, K_DENSE, device, precision="fp16")
            for case in cases
        }
        for baseline in TABLE6_BASELINES:
            speedups = [
                baseline_sddmm_time(baseline, case.matrix, K_DENSE, device) / flash_times[case.name]
                for case in cases
            ]
            dist = speedup_distribution(speedups)
            distributions[(device_name, baseline)] = dist
            rows.append(
                [
                    device_name,
                    baseline,
                    dist["<1"],
                    dist["1-1.5"],
                    dist["1.5-2"],
                    dist[">=2"],
                    dist["geomean"],
                    dist["max"],
                ]
            )
    return rows, distributions


@pytest.mark.paper_experiment("Table 6")
def test_table06_sddmm_speedup_distribution(benchmark):
    rows, distributions = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    emit_table(
        "table06_sddmm_speedups",
        ["Device", "Baseline", "<1 %", "1-1.5 %", "1.5-2 %", ">=2 %", "Geomean", "Max"],
        rows,
        title="Table 6 reproduction: FlashSparse-FP16 SDDMM speedup distribution (N=32)",
    )
    for device in DEVICES:
        tcgnn = distributions[(device, "TC-GNN")]
        rode = distributions[(device, "RoDe")]
        # TC-GNN never beats FlashSparse; RoDe is the tighter comparison.
        assert tcgnn["<1"] <= 5.0
        assert tcgnn["geomean"] > rode["geomean"] > 1.0
