"""Figure 15 — ablation: coalesced vs non-coalesced (direct) thread mapping.

The paper reports average SpMM speedups of 1.34x (H100) and 1.18x (RTX 4090)
for the memory-efficient thread mapping, up to 2.0x.
"""

import pytest

from bench_common import DEVICES, emit_table, evaluation_collection, flash_spmm_time
from repro.perfmodel import geometric_mean

SPMM_N = 128


def run_figure15():
    """Speedup of coalesced over direct thread mapping per device."""
    cases = evaluation_collection()
    rows = []
    details = {}
    for device_name, device in DEVICES.items():
        speedups = []
        for case in cases:
            direct = flash_spmm_time(case.matrix, SPMM_N, device, precision="fp16", coalesced=False)
            coalesced = flash_spmm_time(case.matrix, SPMM_N, device, precision="fp16", coalesced=True)
            speedups.append(direct / coalesced)
        details[device_name] = speedups
        rows.append(
            [device_name, sum(speedups) / len(speedups), geometric_mean(speedups), max(speedups)]
        )
    return rows, details


@pytest.mark.paper_experiment("Figure 15")
def test_fig15_coalescing_ablation(benchmark):
    rows, details = benchmark.pedantic(run_figure15, rounds=1, iterations=1)
    emit_table(
        "fig15_ablation_coalescing",
        ["Device", "Mean speedup", "Geomean speedup", "Max speedup"],
        rows,
        title="Figure 15 reproduction: coalesced vs non-coalesced data access (SpMM, FP16)",
    )
    for device_name, speedups in details.items():
        # Coalescing never hurts; the average gain is modest (paper: 1.18-1.34x)
        # because footprint-bound matrices tie; the maximum approaches 2x.
        assert min(speedups) >= 0.999
        assert 1.0 <= sum(speedups) / len(speedups) <= 1.8
        assert max(speedups) <= 2.05
