"""Figure 13 — SDDMM throughput vs Sputnik, RoDe and TC-GNN (N in {32, 128})."""

import pytest

from bench_common import (
    DEVICES,
    baseline_sddmm_time,
    emit_table,
    evaluation_collection,
    flash_sddmm_time,
    sddmm_gflops,
)
from repro.baselines import SDDMM_BASELINES
from repro.perfmodel import geometric_mean

K_VALUES = (32, 128)
SYSTEMS = ("FlashSparse-FP16", "FlashSparse-TF32") + tuple(SDDMM_BASELINES)


def _system_time(system: str, matrix, k_dense: int, device) -> float:
    if system == "FlashSparse-FP16":
        return flash_sddmm_time(matrix, k_dense, device, precision="fp16")
    if system == "FlashSparse-TF32":
        return flash_sddmm_time(matrix, k_dense, device, precision="tf32")
    return baseline_sddmm_time(system, matrix, k_dense, device)


def run_figure13():
    """Geomean SDDMM GFLOPS per system, device and K."""
    cases = evaluation_collection()
    rows = []
    for device_name, device in DEVICES.items():
        for k_dense in K_VALUES:
            for system in SYSTEMS:
                gfl = []
                for case in cases:
                    t = _system_time(system, case.matrix, k_dense, device)
                    gfl.append(sddmm_gflops(case.matrix, t, k_dense))
                rows.append([device_name, k_dense, system, geometric_mean(gfl), max(gfl)])
    return rows


@pytest.mark.paper_experiment("Figure 13")
def test_fig13_sddmm_performance(benchmark):
    rows = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    emit_table(
        "fig13_sddmm",
        ["Device", "K", "System", "Geomean GFLOPS", "Max GFLOPS"],
        rows,
        title="Figure 13 reproduction: SDDMM throughput",
    )
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    for device in DEVICES:
        for k in K_VALUES:
            flash = by_key[(device, k, "FlashSparse-FP16")]
            # FlashSparse achieves the highest SDDMM throughput; TC-GNN the lowest.
            for system in SDDMM_BASELINES:
                assert flash[3] >= by_key[(device, k, system)][3]
            assert by_key[(device, k, "TC-GNN")][3] <= by_key[(device, k, "RoDe")][3]
