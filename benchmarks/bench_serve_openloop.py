"""Open-loop (arrival-rate) serving benchmark with a latency-SLO gate.

``bench_serve_throughput.py`` measures the server *closed-loop* (each
client waits for its previous request), which can never overload the
server — the load self-throttles.  This benchmark is the open-loop
complement the ROADMAP called for: a Poisson load generator submits at a
fixed **offered rate regardless of completions**, sweeping the rate across
the measured saturation point, so the queueing behaviour under overload
becomes visible:

* below saturation (0.25× / 0.5×) latency stays near the service time and
  nothing is shed;
* past saturation (2×) an *unprotected* server's queue and latency grow
  without bound for as long as the load lasts — the overload-hardened
  server instead keeps the queue at ``max_queue_depth``, rejects the
  excess at admission (``ServerOverloadedError``) and sheds queued
  requests whose deadline lapsed (``ServeTimeoutError``), which keeps the
  p99 of what it *does* serve bounded.

Per rate bin the benchmark records offered vs achieved rate, p50/p99
latency of completed requests, the queue-wait share, reject/shed rates and
the maximum queue depth observed.  Two SLO gates run in CI:

1. **latency SLO below saturation** — at 0.5× saturation the completed-
   request p99 must stay under ``SLO_P99_S``;
2. **bounded overload** — at 2× saturation the queue depth never exceeds
   ``MAX_QUEUE_DEPTH``, shedding/rejection engages (shed + rejected > 0),
   and the p99 of completed requests stays bounded by the request deadline
   (plus execution slack) instead of growing with the run length.

Results are printed as a table and persisted as JSON
(``benchmarks/results/serve_openloop.json``) for the CI artifact upload.

Run standalone (``python benchmarks/bench_serve_openloop.py``) or through
pytest.
"""

from __future__ import annotations

import json
import os

# Pin BLAS to one thread before NumPy loads: the benchmark measures
# queueing, and BLAS oversubscription would smear the service times.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets.generators import power_law_matrix
from repro.serve import Server, ServerOverloadedError, ServeTimeoutError

#: Request matrix: ~20k-edge power-law graph — small enough that one engine
#: pass is a few milliseconds, so a full rate sweep fits in a CI smoke run.
NUM_NODES = 1000
AVG_ROW_LENGTH = 20
SPMM_WIDTH = 32
#: Overload protection under test.
MAX_QUEUE_DEPTH = 32
REQUEST_DEADLINE_S = 0.75
#: Offered-load sweep in multiples of the measured saturation rate.
RATE_MULTIPLES = (0.25, 0.5, 1.0, 2.0)
#: Arrivals per bin: enough for a stable p99 at the low rates without the
#: 2× bin taking more than a few seconds.
ARRIVALS_PER_BIN = 160
#: Closed-loop calibration: clients × requests used to find saturation.
CALIBRATION_CLIENTS = 8
CALIBRATION_REQUESTS = 64
#: SLO gates (see module docstring).
SLO_P99_S = 0.5
SLO_LOAD_MULTIPLE = 0.5
OVERLOAD_MULTIPLE = 2.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "serve_openloop.json"


def _workload():
    csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=23)
    b = np.random.default_rng(23).standard_normal((NUM_NODES, SPMM_WIDTH)).astype(np.float32)
    return csr, b


def _new_server() -> Server:
    return Server(
        device="rtx4090",
        workers=1,
        max_queue_depth=MAX_QUEUE_DEPTH,
        admission="reject",
    )


def _calibrate(csr, b) -> dict:
    """Measure the saturation throughput closed-loop (the most load a
    self-throttling client set can deliver — by construction the rate at
    which offered == served)."""
    with _new_server() as server:
        server.submit_spmm(csr, b).result(120)  # warm translation + plan
        counter = {"next": 0}
        lock = threading.Lock()

        def client() -> None:
            while True:
                with lock:
                    i = counter["next"]
                    if i >= CALIBRATION_REQUESTS:
                        return
                    counter["next"] = i + 1
                server.submit_spmm(csr, b).result(120)

        threads = [threading.Thread(target=client) for _ in range(CALIBRATION_CLIENTS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        snap = server.snapshot()
    return {
        "saturation_rps": CALIBRATION_REQUESTS / elapsed,
        "closed_loop_p50_s": snap.latency_p50_s,
        "execution_p50_s": snap.execution.p50_s,
    }


def _drive_open_loop(rate_rps: float, csr, b, rng: np.random.Generator) -> dict:
    """One rate bin: Poisson arrivals at ``rate_rps``, fresh server, full
    outcome accounting from both the futures and the server's metrics."""
    with _new_server() as server:
        server.submit_spmm(csr, b).result(120)  # warm outside the measurement
        server.metrics.reset_cache_baseline()
        warm_completed = 1

        futures = []
        rejected = 0
        max_queue_seen = 0
        t0 = time.perf_counter()
        next_at = 0.0
        for i in range(ARRIVALS_PER_BIN):
            next_at += rng.exponential(1.0 / rate_rps)
            delay = t0 + next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                futures.append(
                    server.submit_spmm(csr, b, timeout=REQUEST_DEADLINE_S)
                )
            except ServerOverloadedError:
                rejected += 1
            if i % 4 == 0:
                max_queue_seen = max(max_queue_seen, server.snapshot().queue_depth)
        completed = timed_out = errored = 0
        for fut in futures:
            try:
                fut.result(120)
                completed += 1
            except ServeTimeoutError:
                timed_out += 1
            except Exception:
                errored += 1
        elapsed = time.perf_counter() - t0
        max_queue_seen = max(max_queue_seen, server.snapshot().queue_depth)

    # Snapshot only after close() has joined the dispatcher: futures resolve
    # *before* their metrics are recorded, so an in-flight snapshot could
    # undercount the final request's outcome.
    snap = server.snapshot()
    assert snap.requests_rejected == rejected
    assert snap.requests_timed_out == timed_out
    assert snap.requests_completed == completed + warm_completed
    return {
        "offered_rps": rate_rps,
        "achieved_rps": completed / elapsed,
        "arrivals": ARRIVALS_PER_BIN,
        "completed": completed,
        "rejected": rejected,
        "timed_out": timed_out,
        "errored": errored,
        "reject_rate": rejected / ARRIVALS_PER_BIN,
        "shed_rate": (rejected + timed_out) / ARRIVALS_PER_BIN,
        "p50_s": snap.latency_p50_s,
        "p99_s": snap.latency_p99_s,
        "queue_wait_p99_s": snap.queue_wait.p99_s,
        "execution_p99_s": snap.execution.p99_s,
        "max_queue_depth_seen": max_queue_seen,
    }


def run_serve_openloop() -> dict:
    csr, b = _workload()
    calibration = _calibrate(csr, b)
    rng = np.random.default_rng(23)
    bins = []
    for multiple in RATE_MULTIPLES:
        result = _drive_open_loop(multiple * calibration["saturation_rps"], csr, b, rng)
        result["load_multiple"] = multiple
        bins.append(result)
    return {
        "config": {
            "num_nodes": NUM_NODES,
            "avg_row_length": AVG_ROW_LENGTH,
            "spmm_width": SPMM_WIDTH,
            "max_queue_depth": MAX_QUEUE_DEPTH,
            "request_deadline_s": REQUEST_DEADLINE_S,
            "arrivals_per_bin": ARRIVALS_PER_BIN,
            "slo_p99_s": SLO_P99_S,
        },
        "calibration": calibration,
        "bins": bins,
    }


def _emit(report: dict) -> None:
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    rows = [
        [
            f"{r['load_multiple']:.2f}x",
            r["offered_rps"],
            r["achieved_rps"],
            r["p50_s"] * 1e3,
            r["p99_s"] * 1e3,
            f"{r['reject_rate']:.0%}",
            f"{r['shed_rate']:.0%}",
            r["max_queue_depth_seen"],
        ]
        for r in report["bins"]
    ]
    try:
        from bench_common import emit_table

        emit_table(
            "serve_openloop",
            ["Load", "Offered r/s", "Achieved r/s", "p50 (ms)", "p99 (ms)", "Rejected", "Shed", "Max queue"],
            rows,
            title="repro.serve open-loop Poisson sweep "
            f"(saturation {report['calibration']['saturation_rps']:.1f} req/s, "
            f"queue cap {MAX_QUEUE_DEPTH}, deadline {REQUEST_DEADLINE_S}s)",
        )
    except ImportError:  # standalone run without the harness on sys.path
        for row in rows:
            print("  ".join(str(c) for c in row))
    print(f"[openloop JSON written to {RESULTS_JSON}]")


def _bin_for(report: dict, multiple: float) -> dict:
    return next(r for r in report["bins"] if r["load_multiple"] == multiple)


def _check(report: dict) -> None:
    """The two CI gates: latency SLO below saturation, boundedness above."""
    half = _bin_for(report, SLO_LOAD_MULTIPLE)
    assert half["p99_s"] <= SLO_P99_S, (
        f"latency SLO violated at {SLO_LOAD_MULTIPLE}x saturation: "
        f"p99 {half['p99_s']*1e3:.1f} ms > {SLO_P99_S*1e3:.0f} ms"
    )
    assert half["errored"] == 0

    over = _bin_for(report, OVERLOAD_MULTIPLE)
    assert over["max_queue_depth_seen"] <= MAX_QUEUE_DEPTH, (
        f"queue depth unbounded under overload: saw {over['max_queue_depth_seen']} "
        f"> cap {MAX_QUEUE_DEPTH}"
    )
    assert over["rejected"] + over["timed_out"] > 0, (
        "2x saturation offered load produced no shedding — either the "
        "saturation estimate is broken or admission control never engaged"
    )
    # Shedding keeps served-request latency bounded by deadline + execution
    # slack — without it, p99 would grow with the run length.
    bound = REQUEST_DEADLINE_S + 10 * max(
        report["calibration"]["execution_p50_s"], 0.01
    )
    assert over["p99_s"] <= bound, (
        f"p99 under overload not bounded by shedding: "
        f"{over['p99_s']:.3f}s > {bound:.3f}s"
    )
    assert over["errored"] == 0
    print(
        f"OK: p99@{SLO_LOAD_MULTIPLE}x {half['p99_s']*1e3:.1f} ms <= "
        f"{SLO_P99_S*1e3:.0f} ms SLO; 2x overload shed "
        f"{over['shed_rate']:.0%} with queue <= {over['max_queue_depth_seen']}"
    )


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_serve_openloop(benchmark):
        report = benchmark.pedantic(run_serve_openloop, rounds=1, iterations=1)
        _emit(report)
        _check(report)

except ImportError:

    def test_serve_openloop():
        report = run_serve_openloop()
        _emit(report)
        _check(report)


if __name__ == "__main__":
    full_report = run_serve_openloop()
    _emit(full_report)
    _check(full_report)
    print("OK: open-loop serving benchmark complete")
