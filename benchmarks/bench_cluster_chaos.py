"""Cluster chaos benchmark — open-loop traffic under a seeded fault plan.

An open-loop SpMM request stream (fixed arrival clock, no backpressure)
drives a 3-host loopback cluster while a deterministic
:class:`~repro.testing.faults.FaultPlan` takes the fleet apart mid-run:

* one host has its head connection **dropped** at a task frame and its
  re-dials **refused** until the retry policy declares it DEAD — then the
  membership probe re-dials, warm-up pings and readmits it, and
* a second host's worker process is **killed outright** (the plan's
  ``kill_host`` action, applied by the driver at its scheduled request
  step) and never comes back.

Four CI gates ride on it:

* **exactness** — every response is bit-identical to the single-host
  one-shot oracle, through drops, refusals, failover and readmission;
* **zero failed requests** — chaos costs latency, never errors;
* **readmission** — the dropped host must complete DEAD → RECOVERING →
  HEALTHY during the run (``hosts_readmitted >= 1``);
* **bounded tail** — open-loop p99 stays under ``P99_BOUND_S`` (recovery
  is backoff-paced, not retry-storm-paced).

Results land in ``benchmarks/results/cluster_chaos.json`` for the CI
artifact upload.  Run standalone
(``python benchmarks/bench_cluster_chaos.py``) or through pytest.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* NumPy loads: latency gates
# measure recovery pacing, not BLAS oversubscription noise.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.cluster import ClusterScheduler, RetryPolicy
from repro.cluster.head import rendezvous_rank
from repro.datasets.generators import power_law_matrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler
from repro.testing import FaultPlan, loopback_tls_files, tls_available

HOSTS = 3
HOST_IDS = [f"host-{i}" for i in range(HOSTS)]
NUM_NODES = 1200
AVG_ROW_LENGTH = 16
SPMM_WIDTH = 32
NUM_MATRICES = 3
#: Open-loop arrival clock and request count.
REQUESTS = 48
ARRIVAL_S = 0.05
#: Request step at which the plan's kill_host action is applied.
KILL_STEP = REQUESTS // 3
CHAOS_SEED = 13
#: Open-loop request count for the trusted-plane (corruption) phase.
TRUSTED_REQUESTS = 16
#: Shared secret for the trusted-plane phase's handshakes.
TRUSTED_TOKEN = "chaos-bench-token"
#: Tail gate: open-loop p99 under chaos (includes backoff-paced failover).
P99_BOUND_S = 10.0
#: Everything must settle (requests + readmission) within this budget.
DEADLINE_S = 120.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "cluster_chaos.json"


def _workload():
    """Matrices spanning >= 2 distinct affinity hosts, plus oracle outputs."""
    rng = np.random.default_rng(CHAOS_SEED)
    b_q = quantize(
        rng.standard_normal((NUM_NODES, SPMM_WIDTH)), Precision.FP16
    ).astype(np.float32)
    oracle = ShardScheduler(workers=1)
    matrices, seed = [], 0
    while len(matrices) < NUM_MATRICES and seed < 64:
        csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=seed)
        seed += 1
        key = csr.content_key()
        primary = rendezvous_rank(key, HOST_IDS)[0]
        # Keep the mix spread: at most ceil(N/2) matrices per primary host.
        if sum(1 for m in matrices if m["primary"] == primary) >= (NUM_MATRICES + 1) // 2:
            continue
        fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
        matrices.append(
            {
                "csr": csr,
                "fmt": fmt,
                "key": key,
                "primary": primary,
                "oracle": oracle.run_spmm(fmt, b_q, Precision.FP16),
            }
        )
    primaries = {m["primary"] for m in matrices}
    assert len(primaries) >= 2, "could not spread the mix over >= 2 hosts"
    return matrices, b_q


def _victims(matrices) -> tuple[str, str]:
    """(readmit victim, kill victim): distinct hosts that both see traffic."""
    readmit = matrices[0]["primary"]
    kill = next(m["primary"] for m in matrices if m["primary"] != readmit)
    return readmit, kill


def _drive(
    sched: ClusterScheduler, plan: FaultPlan, matrices, b_q, requests: int = REQUESTS
) -> dict:
    """Open loop: one request per ARRIVAL_S tick; the driver applies the
    plan's scheduled kill_host actions at their request steps."""
    latencies = [None] * requests
    failures: list[str] = []
    mismatches = 0
    lock = threading.Lock()

    def one_request(i: int) -> None:
        m = matrices[i % len(matrices)]
        t0 = time.perf_counter()
        try:
            out = sched.run_spmm(
                m["fmt"],
                b_q,
                Precision.FP16,
                target_blocks=10_000,
                csr=m["csr"],
                content_key=m["key"],
            )
        except Exception as exc:  # gate: chaos must never surface errors
            with lock:
                failures.append(f"request {i}: {type(exc).__name__}: {exc}")
            return
        elapsed = time.perf_counter() - t0
        exact = np.array_equal(out, m["oracle"])
        with lock:
            latencies[i] = elapsed
            if not exact:
                nonlocal mismatches
                mismatches += 1

    threads = []
    t0 = time.perf_counter()
    for i in range(requests):
        for kind, host in plan.actions_at(i):
            if kind == "kill_host":
                state = next(h for h in sched.hosts if h.host_id == host)
                if state.process is not None:
                    state.process.terminate()
        t = threading.Thread(target=one_request, args=(i,))
        t.start()
        threads.append(t)
        # Open loop: the next arrival does not wait for this completion.
        time.sleep(max(0.0, (i + 1) * ARRIVAL_S - (time.perf_counter() - t0)))
    deadline = t0 + DEADLINE_S
    for t in threads:
        t.join(max(0.1, deadline - time.perf_counter()))
        if t.is_alive():
            failures.append("request thread still running at the deadline")
    wall = time.perf_counter() - t0
    done = [s for s in latencies if s is not None]
    done.sort()

    def pct(p: float) -> float:
        return done[min(len(done) - 1, int(p * len(done)))] if done else float("nan")

    return {
        "requests": requests,
        "completed": len(done),
        "failed": len(failures),
        "failures": failures[:8],
        "mismatches": mismatches,
        "wall_s": wall,
        "p50_ms": pct(0.50) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
        "max_ms": (done[-1] * 1e3) if done else float("nan"),
    }


def run_cluster_chaos() -> dict:
    matrices, b_q = _workload()
    readmit_victim, kill_victim = _victims(matrices)
    plan = FaultPlan(seed=CHAOS_SEED)
    with ClusterScheduler(
        hosts=HOSTS,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.02, seed=CHAOS_SEED),
        probe_interval_s=0.2,
    ) as sched:
        # Warm pass: routes, plans and remote translation caches, pre-chaos.
        for m in matrices:
            out = sched.run_spmm(
                m["fmt"], b_q, Precision.FP16, target_blocks=10_000,
                csr=m["csr"], content_key=m["key"],
            )
            assert np.array_equal(out, m["oracle"]), "warm pass must be exact"
        # Arm the chaos: a connection-level outage on one host (the worker
        # process survives, so readmission finds its cache warm) and a real
        # process kill on another, applied by the driver at KILL_STEP.
        plan.drop_connection(nth=1, type="task", scope=readmit_victim)
        plan.refuse_connect(2, scope=readmit_victim)
        plan.kill_host(step=KILL_STEP, host=kill_victim)
        drive = _drive(sched, plan, matrices, b_q)
        # The probe may still be mid-readmission when traffic ends.
        deadline = time.monotonic() + 30.0
        while (
            sched.stats_snapshot()["hosts_readmitted"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        snap = sched.stats_snapshot()
    report = {
        "config": {
            "hosts": HOSTS,
            "num_nodes": NUM_NODES,
            "spmm_width": SPMM_WIDTH,
            "matrices": NUM_MATRICES,
            "requests": REQUESTS,
            "arrival_s": ARRIVAL_S,
            "kill_step": KILL_STEP,
            "seed": CHAOS_SEED,
            "cpus": os.cpu_count(),
        },
        "victims": {"readmit": readmit_victim, "kill": kill_victim},
        "drive": drive,
        "fired": plan.fired_kinds(),
        "cluster": {
            "host_deaths": snap["host_deaths"],
            "failovers": snap["failovers"],
            "reconnect_attempts": snap["reconnect_attempts"],
            "hosts_readmitted": snap["hosts_readmitted"],
            "probe_dials": snap["probe_dials"],
            "speculative_dispatches": snap["speculative_dispatches"],
            "death_log": snap["death_log"],
            "host_states": {h: e["state"] for h, e in snap["hosts"].items()},
        },
    }
    report["trusted"] = run_trusted_chaos()
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def run_trusted_chaos() -> dict:
    """Phase 2 — the trusted data plane under seeded payload corruption.

    A fresh authenticated (and, when the local toolchain can mint a
    loopback certificate, TLS-wrapped) cluster serves the same open-loop
    mix while seeded ``corrupt_payload`` faults flip bits in both
    directions: a head-side task frame (caught by the worker's CRC check)
    and each worker's first result frame (caught by the head's).  The
    gates: every response bit-identical to the oracle, zero failed
    requests, and ``integrity_failures >= 1`` — corruption costs a retry,
    never numerics and never an error.
    """
    matrices, b_q = _workload()
    head_plan = FaultPlan(seed=CHAOS_SEED + 1).corrupt_payload(nth=2, type="task")
    worker_plan = FaultPlan(seed=CHAOS_SEED + 2).corrupt_payload(nth=1, type="result")
    tls = tls_available()
    tls_kwargs = {}
    if tls:
        cert, key = loopback_tls_files()
        tls_kwargs = {"tls_cert": cert, "tls_key": key}
    with ClusterScheduler(
        hosts=HOSTS,
        fault_plan=head_plan,
        worker_fault_plan=worker_plan,
        auth_token=TRUSTED_TOKEN,
        retry_policy=RetryPolicy(base_delay_s=0.02, seed=CHAOS_SEED),
        probe_interval_s=0.2,
        **tls_kwargs,
    ) as sched:
        drive = _drive(sched, head_plan, matrices, b_q, requests=TRUSTED_REQUESTS)
        snap = sched.stats_snapshot()
    return {
        "config": {"hosts": HOSTS, "requests": TRUSTED_REQUESTS, "tls": tls},
        "drive": drive,
        "fired": head_plan.fired_kinds(),
        "security": {
            "integrity_failures": snap["integrity_failures"],
            "auth_rejects": snap["auth_rejects"],
            "handshake_failures": snap["handshake_failures"],
            "reconnects": snap["reconnects"],
            "task_failures": snap["task_failures"],
        },
    }


def _emit(report: dict) -> None:
    drive, cluster = report["drive"], report["cluster"]
    trusted = report["trusted"]
    rows = [
        ["completed / requests", f"{drive['completed']}/{drive['requests']}"],
        ["failed requests", str(drive["failed"])],
        ["oracle mismatches", str(drive["mismatches"])],
        ["p50 / p99 (ms)", f"{drive['p50_ms']:.1f} / {drive['p99_ms']:.1f}"],
        ["host deaths / failovers", f"{cluster['host_deaths']} / {cluster['failovers']}"],
        ["hosts readmitted", str(cluster["hosts_readmitted"])],
        ["final host states", " ".join(f"{h}={s}" for h, s in cluster["host_states"].items())],
        ["faults fired", " ".join(report["fired"]) or "-"],
        [
            "trusted phase (auth%s)" % ("+TLS" if trusted["config"]["tls"] else ""),
            f"{trusted['drive']['completed']}/{trusted['drive']['requests']} ok, "
            f"{trusted['security']['integrity_failures']} integrity failures caught",
        ],
    ]
    try:
        from bench_common import emit_table

        emit_table(
            "cluster_chaos",
            ["Metric", "Value"],
            rows,
            title=f"repro.cluster chaos: {report['config']['requests']} open-loop "
            f"requests over {report['config']['hosts']} hosts under FaultPlan "
            f"seed {report['config']['seed']}",
        )
    except (ImportError, TypeError):  # standalone, or non-numeric cells
        for label, value in rows:
            print(f"{label:>26}: {value}")
    print(f"[cluster chaos JSON written to {RESULTS_JSON}]")


def _check(report: dict) -> None:
    drive, cluster = report["drive"], report["cluster"]
    assert drive["failed"] == 0, (
        f"chaos surfaced {drive['failed']} failed requests: {drive['failures']}"
    )
    assert drive["completed"] == drive["requests"]
    assert drive["mismatches"] == 0, (
        f"{drive['mismatches']} responses diverged from the single-host oracle"
    )
    assert cluster["hosts_readmitted"] >= 1, (
        "the dropped host never completed DEAD -> RECOVERING -> HEALTHY "
        f"(probe dials: {cluster['probe_dials']}, death log: {cluster['death_log']})"
    )
    readmit, kill = report["victims"]["readmit"], report["victims"]["kill"]
    assert cluster["host_states"][readmit] == "healthy", (
        f"readmitted host ended {cluster['host_states'][readmit]!r}, not healthy"
    )
    assert cluster["host_states"][kill] == "dead", (
        f"killed host ended {cluster['host_states'][kill]!r}, not dead"
    )
    assert cluster["host_deaths"] >= 2  # the outage and the kill
    assert "kill_host" in report["fired"] and "refuse_connect" in report["fired"]
    p99_s = drive["p99_ms"] / 1e3
    assert p99_s <= P99_BOUND_S, (
        f"open-loop p99 {p99_s:.2f}s exceeds {P99_BOUND_S}s under chaos — "
        "recovery is stalling the request path"
    )
    # Trusted-plane gates: corruption is caught and costs a retry, never
    # numerics and never an error.
    trusted = report["trusted"]
    tdrive, security = trusted["drive"], trusted["security"]
    assert tdrive["failed"] == 0, (
        f"trusted phase surfaced {tdrive['failed']} failed requests: "
        f"{tdrive['failures']}"
    )
    assert tdrive["completed"] == tdrive["requests"]
    assert tdrive["mismatches"] == 0, (
        f"{tdrive['mismatches']} trusted-phase responses diverged from the oracle"
    )
    assert security["integrity_failures"] >= 1, (
        "no corrupted frame was ever detected — the seeded corrupt_payload "
        f"faults never fired (fired: {trusted['fired']})"
    )
    assert security["task_failures"] == 0


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_cluster_chaos(benchmark):
        report = benchmark.pedantic(run_cluster_chaos, rounds=1, iterations=1)
        _emit(report)
        _check(report)

except ImportError:

    def test_cluster_chaos():
        report = run_cluster_chaos()
        _emit(report)
        _check(report)


if __name__ == "__main__":
    result = run_cluster_chaos()
    _emit(result)
    _check(result)
    print("OK: cluster chaos benchmark complete")
