"""Figure 16 — end-to-end GCN and AGNN training-epoch speedups.

The paper trains GCN (hidden 128) and AGNN (hidden 32) on the Table-4 graphs
and compares end-to-end epoch time against DGL, PyG and TC-GNN, reporting
geomean speedups over DGL of 1.57x (GCN) and 1.79x (AGNN) on RTX 4090.
"""

import pytest

from bench_common import DEVICES, emit_table, graph_only_collection
from repro.gnn import estimate_epoch_time
from repro.perfmodel import geometric_mean

#: Graphs used in Figure 16 (the paper's end-to-end set, excluding the
#: largest ones whose stand-ins would dominate runtime).
FIGURE16_GRAPHS = (
    "GitHub",
    "Artist",
    "Blog",
    "Ell",
    "Amazon",
    "Amazon0505",
    "DD",
    "Yelp",
    "Comamazon",
    "IGB-small",
)
MODELS = (("gcn", 128), ("agnn", 32))
BACKENDS = ("flashsparse-fp16", "flashsparse-tf32", "dgl", "pyg", "tcgnn")


def run_figure16():
    """Estimated per-epoch time per graph, model and backend."""
    cases = {case.name: case.matrix for case in graph_only_collection()}
    rows = []
    speedups_vs_dgl = {model: {b: [] for b in ("flashsparse-fp16", "flashsparse-tf32")} for model, _ in MODELS}
    device = DEVICES["RTX4090"]
    for graph_name in FIGURE16_GRAPHS:
        matrix = cases[graph_name]
        for model, hidden in MODELS:
            times = {}
            for backend in BACKENDS:
                est = estimate_epoch_time(
                    model, matrix, backend, device, in_dim=128, hidden=hidden, out_dim=16, num_layers=2
                )
                times[backend] = est.total_time_s
            for backend in BACKENDS:
                rows.append(
                    [
                        graph_name,
                        model.upper(),
                        backend,
                        times[backend] * 1e3,
                        times["dgl"] / times[backend],
                    ]
                )
            for fs in ("flashsparse-fp16", "flashsparse-tf32"):
                speedups_vs_dgl[model][fs].append(times["dgl"] / times[fs])
    return rows, speedups_vs_dgl


@pytest.mark.paper_experiment("Figure 16")
def test_fig16_end_to_end_gnn(benchmark):
    rows, speedups = benchmark.pedantic(run_figure16, rounds=1, iterations=1)
    emit_table(
        "fig16_end_to_end_gnn",
        ["Graph", "Model", "Backend", "Epoch time (ms)", "Speedup vs DGL"],
        rows,
        title="Figure 16 reproduction: end-to-end GNN epoch time on RTX 4090",
    )
    summary_rows = []
    for model, _ in MODELS:
        for fs, values in speedups[model].items():
            summary_rows.append([model.upper(), fs, geometric_mean(values), max(values)])
    emit_table(
        "fig16_end_to_end_gnn_summary",
        ["Model", "Backend", "Geomean speedup vs DGL", "Max"],
        summary_rows,
        title="Figure 16 reproduction: FlashSparse speedup over DGL (geomean)",
    )
    # Shape: FlashSparse beats DGL on every graph for both models, and the
    # geomean lands in a band around the paper's 1.57x / 1.79x.
    for model, _ in MODELS:
        fp16 = speedups[model]["flashsparse-fp16"]
        assert min(fp16) > 1.0
        assert 1.2 <= geometric_mean(fp16) <= 4.0
