"""Figure 14 — ablation: 8x1 vs 16x1 vector granularity, SpMM and SDDMM.

Both variants use the same FlashSparse machinery and kernel profile; only
the vector granularity (and therefore the TC-block structure) differs, which
is exactly the paper's ablation.  The paper reports geomean speedups of 1.89x
(SpMM) and 2.61x (SDDMM) on H100 for the 8x1 version.
"""

import pytest

from bench_common import (
    DEVICES,
    emit_table,
    evaluation_collection,
    flash_sddmm_time,
    flash_spmm_time,
    vector16_sddmm_time,
    vector16_spmm_time,
)
from repro.perfmodel import geometric_mean

SPMM_N = 128
SDDMM_K = 32


def run_figure14():
    """Geomean speedup of the 8x1 version over the 16x1 version, per device and op."""
    cases = evaluation_collection()
    rows = []
    details = {}
    for device_name, device in DEVICES.items():
        spmm_speedups = []
        sddmm_speedups = []
        for case in cases:
            spmm_speedups.append(
                vector16_spmm_time(case.matrix, SPMM_N, device)
                / flash_spmm_time(case.matrix, SPMM_N, device)
            )
            sddmm_speedups.append(
                vector16_sddmm_time(case.matrix, SDDMM_K, device)
                / flash_sddmm_time(case.matrix, SDDMM_K, device)
            )
        details[device_name] = (spmm_speedups, sddmm_speedups)
        rows.append(
            [
                device_name,
                geometric_mean(spmm_speedups),
                max(spmm_speedups),
                geometric_mean(sddmm_speedups),
                max(sddmm_speedups),
            ]
        )
    return rows, details


@pytest.mark.paper_experiment("Figure 14")
def test_fig14_vector_size_ablation(benchmark):
    rows, details = benchmark.pedantic(run_figure14, rounds=1, iterations=1)
    emit_table(
        "fig14_ablation_vector_size",
        ["Device", "SpMM geomean 8x1/16x1", "SpMM max", "SDDMM geomean", "SDDMM max"],
        rows,
        title="Figure 14 reproduction: speedup of 8x1 over 16x1 vector granularity (FP16)",
    )
    for device_name, (spmm_speedups, sddmm_speedups) in details.items():
        # The 8x1 version wins essentially everywhere and the geomean lands in
        # a band around the paper's 1.89x / 2.61x.  A handful of extremely
        # sparse banded matrices (1-2 vectors per window) can tie or lose a
        # few percent on SDDMM, where halving the window doubles the number of
        # output TC blocks — the paper's >=100k-nonzero selection filters that
        # regime out.
        assert min(spmm_speedups) >= 0.95
        assert min(sddmm_speedups) >= 0.90
        assert 1.1 <= geometric_mean(spmm_speedups) <= 3.0
        assert 1.1 <= geometric_mean(sddmm_speedups) <= 3.5
