"""Pytest configuration for the benchmark harness.

The benchmarks are pytest-benchmark tests: ``pytest benchmarks/
--benchmark-only`` runs every ``bench_*`` module, regenerates the paper's
tables/figures into ``benchmarks/results/`` and reports the wall-clock time
of each regeneration.
"""

import sys
from pathlib import Path

# Make the sibling bench_common module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_experiment(name): maps a benchmark to a paper table/figure")
