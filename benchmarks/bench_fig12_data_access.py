"""Figure 12 — data-access cost of 16x1 vs 8x1 vectors (SpMM N=128, SDDMM N=32).

The paper reports that the 8x1 granularity reduces the data-access cost by up
to 49 % (average 35 %) for SpMM and up to 49 % (average 28 %) for SDDMM, FP16.
"""

import pytest

from bench_common import emit_table, evaluation_collection
from repro.formats.stats import sddmm_data_access_bytes, spmm_data_access_bytes

SPMM_N = 128
SDDMM_K = 32


def run_figure12():
    """Per-matrix data-access cost at both granularities, plus reductions."""
    rows = []
    spmm_reductions = []
    sddmm_reductions = []
    for case in evaluation_collection():
        matrix = case.matrix
        spmm16 = spmm_data_access_bytes(matrix, k=8, n_dense=SPMM_N, precision="fp16", vector_size=16)
        spmm8 = spmm_data_access_bytes(matrix, k=8, n_dense=SPMM_N, precision="fp16", vector_size=8)
        sddmm16 = sddmm_data_access_bytes(matrix, mma_k=8, k_dense=SDDMM_K, precision="fp16", vector_size=16)
        sddmm8 = sddmm_data_access_bytes(matrix, mma_k=8, k_dense=SDDMM_K, precision="fp16", vector_size=8)
        spmm_red = 100.0 * (1 - spmm8 / spmm16) if spmm16 else 0.0
        sddmm_red = 100.0 * (1 - sddmm8 / sddmm16) if sddmm16 else 0.0
        spmm_reductions.append(spmm_red)
        sddmm_reductions.append(sddmm_red)
        rows.append(
            [
                case.name,
                matrix.nnz,
                spmm16 / 1e6,
                spmm8 / 1e6,
                spmm_red,
                sddmm16 / 1e6,
                sddmm8 / 1e6,
                sddmm_red,
            ]
        )
    return rows, spmm_reductions, sddmm_reductions


@pytest.mark.paper_experiment("Figure 12")
def test_fig12_data_access_cost(benchmark):
    rows, spmm_reductions, sddmm_reductions = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    emit_table(
        "fig12_data_access",
        [
            "Matrix",
            "nnz",
            "SpMM MB @16x1",
            "SpMM MB @8x1",
            "SpMM reduction %",
            "SDDMM MB @16x1",
            "SDDMM MB @8x1",
            "SDDMM reduction %",
        ],
        rows,
        title="Figure 12 reproduction: data access cost, 16x1 vs 8x1 (FP16)",
    )
    avg_spmm = sum(spmm_reductions) / len(spmm_reductions)
    avg_sddmm = sum(sddmm_reductions) / len(sddmm_reductions)
    # Paper: average 35% (SpMM) / 28% (SDDMM), max ~49%.  Accept a band.
    assert 20.0 <= avg_spmm <= 55.0
    assert 15.0 <= avg_sddmm <= 55.0
    assert max(spmm_reductions) <= 60.0
    assert all(r >= 0.0 for r in spmm_reductions + sddmm_reductions)
