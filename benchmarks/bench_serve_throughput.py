"""Serving throughput benchmark — 1 vs N worker processes, closed loop.

A closed-loop load generator (each client thread submits its next request
as soon as the previous one resolves — the standard way to measure a
serving system without open-loop queue explosion) drives a
:class:`repro.serve.Server` with a mixed SpMM / SDDMM request stream over a
shared graph.  Measured per configuration:

* sustained requests/second (wall-clock over the whole run), and
* p50 / p95 request latency from the server's own metrics.

It doubles as the multi-process scaling gate: with at least 2 CPUs, the
N-worker server must sustain ≥ 1.5× the single-worker throughput (the
modest bar a sharded pool has to clear over inline execution after paying
shared-memory setup and shard pickling).  On a single-CPU runner the gate
is skipped — there is nothing to scale onto.

Run standalone (``python benchmarks/bench_serve_throughput.py``) or through
pytest.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* NumPy loads: the benchmark
# measures process-level sharding, and oversubscribed BLAS threads in every
# worker would turn the comparison into scheduler noise.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import threading
import time

import numpy as np

from repro.datasets.generators import power_law_matrix
from repro.serve import Server

#: Shared request matrix: ~120k-edge power-law graph (big enough that one
#: engine pass dwarfs dispatch and shared-memory overhead).
NUM_NODES = 3000
AVG_ROW_LENGTH = 40
#: Dense operand widths of the request mix.
SPMM_WIDTH = 96
SDDMM_K = 64
#: Closed-loop clients and requests per configuration.
CLIENTS = 4
REQUESTS = 48
#: SpMM share of the stream (the rest is SDDMM), interleaved per request.
SPMM_EVERY = 3  # request i is SDDMM when i % SPMM_EVERY == 0
#: Scaling gate: N-worker throughput over single-worker, on >= 2 CPUs.
MIN_SCALING = 1.5


def _workload():
    csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=11)
    rng = np.random.default_rng(11)
    b_spmm = rng.standard_normal((NUM_NODES, SPMM_WIDTH)).astype(np.float32)
    a_sddmm = rng.standard_normal((NUM_NODES, SDDMM_K)).astype(np.float32)
    b_sddmm = rng.standard_normal((NUM_NODES, SDDMM_K)).astype(np.float32)
    return csr, b_spmm, a_sddmm, b_sddmm


def _drive(server: Server, csr, b_spmm, a_sddmm, b_sddmm, requests: int) -> float:
    """Closed loop: CLIENTS threads, ``requests`` total; returns wall time."""
    counter = {"next": 0}
    lock = threading.Lock()

    def client() -> None:
        while True:
            with lock:
                i = counter["next"]
                if i >= requests:
                    return
                counter["next"] = i + 1
            if i % SPMM_EVERY == 0:
                server.submit_sddmm(csr, a_sddmm, b_sddmm).result(300)
            else:
                server.submit_spmm(csr, b_spmm).result(300)

    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _measure(workers: int, csr, b_spmm, a_sddmm, b_sddmm) -> dict:
    with Server(device="rtx4090", workers=workers) as server:
        # Warm: translation, block-batch packing, worker pool fork.
        server.submit_spmm(csr, b_spmm).result(300)
        server.submit_sddmm(csr, a_sddmm, b_sddmm).result(300)
        server.metrics.reset_cache_baseline()
        elapsed = _drive(server, csr, b_spmm, a_sddmm, b_sddmm, REQUESTS)
        snap = server.snapshot()
    return {
        "workers": workers,
        "rps": REQUESTS / elapsed,
        "p50_ms": snap.latency_p50_s * 1e3,
        "p95_ms": snap.latency_p95_s * 1e3,
        "coalesced": snap.requests_coalesced,
        "cache_hit_rate": snap.cache.hit_rate,
    }


def run_serve_throughput():
    """Rows of (config, req/s, p50 ms, p95 ms, coalesced)."""
    csr, b_spmm, a_sddmm, b_sddmm = _workload()
    n_workers = min(4, os.cpu_count() or 1)
    single = _measure(1, csr, b_spmm, a_sddmm, b_sddmm)
    rows = [
        ["1 worker (inline)", single["rps"], single["p50_ms"], single["p95_ms"], single["coalesced"]],
    ]
    if n_workers > 1:
        multi = _measure(n_workers, csr, b_spmm, a_sddmm, b_sddmm)
        rows.append(
            [
                f"{n_workers} workers (process pool)",
                multi["rps"],
                multi["p50_ms"],
                multi["p95_ms"],
                multi["coalesced"],
            ]
        )
        rows.append(
            ["scaling (multi / single)", multi["rps"] / single["rps"], 0.0, 0.0, 0]
        )
    return rows


def _emit(rows) -> None:
    from bench_common import emit_table

    emit_table(
        "serve_throughput",
        ["Configuration", "Requests/s", "p50 (ms)", "p95 (ms)", "Coalesced"],
        rows,
        title="repro.serve closed-loop throughput: mixed SpMM/SDDMM stream, "
        f"{CLIENTS} clients, {REQUESTS} requests",
    )


def _check(rows) -> None:
    cpus = os.cpu_count() or 1
    if cpus < 2 or len(rows) < 3:
        print(f"SKIP scaling gate: {cpus} CPU(s) available, need >= 2")
        return
    scaling = rows[-1][1]
    assert scaling >= MIN_SCALING, (
        f"multi-process serving scaling regressed: {scaling:.2f}x < "
        f"{MIN_SCALING}x single-worker throughput on {cpus} CPUs"
    )


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_serve_throughput(benchmark):
        rows = benchmark.pedantic(run_serve_throughput, rounds=1, iterations=1)
        _emit(rows)
        _check(rows)

except ImportError:

    def test_serve_throughput():
        rows = run_serve_throughput()
        _emit(rows)
        _check(rows)


if __name__ == "__main__":
    result_rows = run_serve_throughput()
    try:
        _emit(result_rows)
    except ImportError:  # standalone invocation without the harness on sys.path
        for row in result_rows:
            print(f"{row[0]:>28}: {row[1]:8.2f} req/s  p50 {row[2]:.1f} ms  p95 {row[3]:.1f} ms")
    _check(result_rows)
    print("OK: serving throughput benchmark complete")
