"""Table 7 — memory-footprint reduction of ME-BCRS over SR-BCRS.

The paper buckets the per-matrix footprint reduction into 1-10 %, 11-20 %,
21-30 %, 31-40 % and >=41 % and reports an 11.72 % average (max 50 %), with
336 of 515 matrices above 10 %.
"""

import pytest

from bench_common import emit_table, evaluation_collection
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.srbcrs import SRBCRSMatrix, footprint_reduction

BUCKETS = (
    ("1%-10%", 0.0, 0.105),
    ("11%-20%", 0.105, 0.205),
    ("21%-30%", 0.205, 0.305),
    ("31%-40%", 0.305, 0.405),
    (">=41%", 0.405, 1.01),
)


def run_table7():
    """Footprint reduction per matrix and the bucketed histogram."""
    reductions = []
    for case in evaluation_collection():
        me = MEBCRSMatrix.from_csr(case.matrix, precision="fp16")
        sr = SRBCRSMatrix.from_csr(case.matrix, precision="fp16")
        reductions.append(footprint_reduction(me.memory_footprint_bytes(), sr.memory_footprint_bytes()))
    histogram = []
    for label, lo, hi in BUCKETS:
        histogram.append([label, sum(1 for r in reductions if lo <= r < hi)])
    return histogram, reductions


@pytest.mark.paper_experiment("Table 7")
def test_table07_format_footprint(benchmark):
    histogram, reductions = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    rows = histogram + [
        ["average %", 100.0 * sum(reductions) / len(reductions)],
        ["max %", 100.0 * max(reductions)],
    ]
    emit_table(
        "table07_formats_footprint",
        ["Reduction bucket", "#Matrices / value"],
        rows,
        title="Table 7 reproduction: ME-BCRS footprint reduction vs SR-BCRS (FP16)",
    )
    # Invariants: reductions are non-negative and bounded by 50%-ish (the
    # padding can at most double the stored vectors of a window).
    assert all(0.0 <= r <= 0.55 for r in reductions)
    average = 100.0 * sum(reductions) / len(reductions)
    # Paper: 11.72% average.  The synthetic collection lands in a band.
    assert 2.0 <= average <= 30.0
    assert max(reductions) >= 0.10
