"""Table 2 — zero elements inside nonzero vectors at 16x1 vs 8x1.

The paper shows that with 16x1 vectors the stored zeros outnumber the
nonzeros by 5.6x-11.4x, and that the 8x1 partition roughly halves the zero
fill on every dataset.
"""

import pytest

from bench_common import emit_table, graph_only_collection
from repro.formats.stats import vector_stats


def run_table2():
    """Zero-fill statistics for every Table-4 graph stand-in."""
    rows = []
    for case in graph_only_collection():
        matrix = case.matrix
        s16 = vector_stats(matrix, 16)
        s8 = vector_stats(matrix, 8)
        rows.append(
            [
                case.name,
                matrix.n_rows,
                matrix.nnz,
                s16.zero_fill,
                s8.zero_fill,
                s16.zero_fill / matrix.nnz if matrix.nnz else 0.0,
                100.0 * (1 - s8.zero_fill / s16.zero_fill) if s16.zero_fill else 0.0,
            ]
        )
    return rows


@pytest.mark.paper_experiment("Table 2")
def test_table02_zero_fill(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit_table(
        "table02_zero_fill",
        ["Graph", "#Nodes", "#Edges", "Zeros@16x1", "Zeros@8x1", "16x1 fill ratio", "Reduction %"],
        rows,
        title="Table 2 reproduction: zeros stored inside nonzero vectors",
    )
    # Invariants the paper's table exhibits: 8x1 always stores fewer zeros,
    # and on the large graphs the zero fill at 16x1 exceeds the nonzeros.
    assert all(row[4] <= row[3] for row in rows)
    large = [row for row in rows if row[2] > 200_000]
    assert all(row[5] > 1.0 for row in large)
