"""Engine microbenchmark — batched vs reference wall-clock on SpMM/SDDMM.

The batched execution engine (:mod:`repro.kernels.engine`) exists to remove
the per-(window, block, tile) interpreter overhead of the reference loops.
This benchmark records the wall-clock of both engines on a fig11-style
synthetic workload (Erdős–Rényi / power-law matrices, N = 128) and reports
the speedup.  It doubles as a regression gate: the batched SpMM must stay at
least 10× faster than the reference loop.

Run standalone (``python benchmarks/bench_engine_speedup.py``) or through
pytest (``pytest benchmarks/bench_engine_speedup.py --benchmark-only``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.generators import erdos_renyi_matrix, power_law_matrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.kernels.common import FlashSparseConfig
from repro.kernels.spmm_flash import spmm_flash_execute
from repro.kernels.sddmm_flash import sddmm_flash_execute

#: Dense operand width, matching the Figure 11 sweep.
N_DENSE = 128
#: Minimum batched-over-reference SpMM speedup the engine must sustain.
MIN_SPMM_SPEEDUP = 10.0
#: Wall-clock samples per engine; best-of-N keeps the CI gate robust to
#: scheduling noise on shared runners.
TIMING_ROUNDS = 3


def _workload():
    """Two fig11-style synthetic matrices, small enough for the loop path."""
    return [
        ("erdos_renyi_2048", erdos_renyi_matrix(2048, avg_row_length=24, seed=11)),
        ("power_law_3072", power_law_matrix(3072, avg_row_length=16, seed=12)),
    ]


def _time(fn) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_engine_speedup():
    """Rows of (matrix, op, reference s, batched s, speedup)."""
    rng = np.random.default_rng(20260730)
    rows = []
    for name, csr in _workload():
        fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
        b = rng.standard_normal((fmt.shape[1], N_DENSE))
        a = rng.standard_normal((fmt.shape[0], N_DENSE))
        batched = FlashSparseConfig(precision="fp16", engine="batched")
        reference = FlashSparseConfig(precision="fp16", engine="reference")

        # Warm both paths once (format batch arrays, LRU caches, BLAS init).
        spmm_flash_execute(fmt, b, batched)
        ref_spmm = _time(lambda: spmm_flash_execute(fmt, b, reference))
        bat_spmm = _time(lambda: spmm_flash_execute(fmt, b, batched))
        rows.append([name, "spmm", ref_spmm, bat_spmm, ref_spmm / bat_spmm])

        sddmm_flash_execute(fmt, a, b, batched)
        ref_sddmm = _time(lambda: sddmm_flash_execute(fmt, a, b, reference))
        bat_sddmm = _time(lambda: sddmm_flash_execute(fmt, a, b, batched))
        rows.append([name, "sddmm", ref_sddmm, bat_sddmm, ref_sddmm / bat_sddmm])
    return rows


def _emit(rows) -> None:
    from bench_common import emit_table

    emit_table(
        "engine_speedup",
        ["Matrix", "Op", "Reference (s)", "Batched (s)", "Speedup"],
        rows,
        title="Batched execution engine vs reference emulation loop (N=128, fp16)",
    )


def _check(rows) -> None:
    spmm_speedups = [r[4] for r in rows if r[1] == "spmm"]
    worst = min(spmm_speedups)
    assert worst >= MIN_SPMM_SPEEDUP, (
        f"batched SpMM engine regressed: worst speedup {worst:.1f}x < "
        f"{MIN_SPMM_SPEEDUP:.0f}x over the reference loop"
    )


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_engine_speedup(benchmark):
        rows = benchmark.pedantic(run_engine_speedup, rounds=1, iterations=1)
        _emit(rows)
        _check(rows)

except ImportError:

    def test_engine_speedup():
        rows = run_engine_speedup()
        _emit(rows)
        _check(rows)


if __name__ == "__main__":
    result_rows = run_engine_speedup()
    try:
        _emit(result_rows)
    except ImportError:  # standalone invocation without the harness on sys.path
        for row in result_rows:
            print(f"{row[0]:>20} {row[1]:>6}: reference {row[2]:.3f}s  batched {row[3]:.3f}s  {row[4]:.1f}x")
    _check(result_rows)
    print(f"OK: batched SpMM engine >= {MIN_SPMM_SPEEDUP:.0f}x faster than the reference loop")
