"""Cluster serving benchmark — 1 vs 2 loopback worker hosts, closed loop.

A closed-loop load generator drives a ``backend="cluster"`` server with an
SpMM request stream over several distinct power-law graphs chosen so that
rendezvous affinity splits them evenly across two hosts.  Measured per
host count:

* sustained requests/second and p50/p95 latency (server metrics), and
* the cluster counters (per-host task split, transport bytes).

Two CI gates ride on it:

* **scaling** — with at least 2 CPUs, the 2-host cluster must sustain
  ≥ ``MIN_SCALING``× the 1-host throughput (the bar a second host has to
  clear after paying per-task framing, transport and reassembly).  On a
  single-CPU runner the gate is skipped — there is nothing to scale onto.
* **cache affinity** — a repeat-matrix workload must show a remote
  translation-cache hit rate > ``MIN_AFFINITY_HIT_RATE``: content-key
  routing sends every request for a matrix to the host that already holds
  its translation, so only the first task per (matrix, host) may miss.
* **push/pin** — the same repeat workload run once over protocol v3
  (matrix and operand bytes pushed once per host, task frames reference
  keys) and once with v2-capped workers (operands embedded in every task
  frame) must show ≥ ``MIN_PUSHPIN_SAVINGS``× lower matrix bytes per
  request on the v3 wire, with ``store_hits > 0`` and bit-identical
  results between the two runs.

Results land in ``benchmarks/results/cluster_scaling.json`` for the CI
artifact upload.  Run standalone
(``python benchmarks/bench_cluster_scaling.py``) or through pytest.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* NumPy loads: the benchmark
# measures host-level scaling, and oversubscribed BLAS threads inside every
# worker host would turn the comparison into scheduler noise.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.cluster.head import rendezvous_rank
from repro.datasets.generators import power_law_matrix
from repro.serve import Server

#: Request matrices: ~120k-edge power-law graphs (one engine pass dwarfs
#: framing + transport overhead on loopback).
NUM_NODES = 3000
AVG_ROW_LENGTH = 40
SPMM_WIDTH = 96
#: Distinct matrices per host in the scaling mix (affinity pins a matrix to
#: one host, so cross-host parallelism comes from distinct matrices).
MATRICES_PER_HOST = 2
#: Closed-loop clients and total requests per configuration.
CLIENTS = 4
REQUESTS = 32
#: Repeat-matrix requests of the affinity phase.
AFFINITY_REQUESTS = 12
#: Scaling gate: 2-host throughput over 1-host, on >= 2 CPUs.
MIN_SCALING = 1.2
#: Affinity gate: remote translation-cache hit rate on a repeat workload.
MIN_AFFINITY_HIT_RATE = 0.8
#: Repeat-matrix requests of the push/pin phase (per wire version).
PUSHPIN_REQUESTS = 12
#: Push/pin gate: v2 re-shipping over v3 matrix bytes per request.
MIN_PUSHPIN_SAVINGS = 5.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "cluster_scaling.json"


def _balanced_matrices():
    """Matrices whose content keys rendezvous evenly onto host-0/host-1."""
    buckets = {"host-0": [], "host-1": []}
    seed = 0
    while any(len(b) < MATRICES_PER_HOST for b in buckets.values()) and seed < 64:
        csr = power_law_matrix(NUM_NODES, avg_row_length=AVG_ROW_LENGTH, seed=seed)
        target = rendezvous_rank(csr.content_key(), list(buckets))[0]
        if len(buckets[target]) < MATRICES_PER_HOST:
            buckets[target].append(csr)
        seed += 1
    matrices = buckets["host-0"] + buckets["host-1"]
    assert len(matrices) == 2 * MATRICES_PER_HOST, "could not balance the mix"
    return matrices


def _drive(server: Server, matrices, b, requests: int) -> float:
    """Closed loop: CLIENTS threads, ``requests`` total; returns wall time."""
    counter = {"next": 0}
    lock = threading.Lock()

    def client() -> None:
        while True:
            with lock:
                i = counter["next"]
                if i >= requests:
                    return
                counter["next"] = i + 1
            server.submit_spmm(matrices[i % len(matrices)], b).result(300)

    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _measure(hosts: int, matrices, b) -> dict:
    with Server(backend="cluster", hosts=hosts, device="rtx4090") as server:
        for csr in matrices:  # warm: translation push, plan, host caches
            server.submit_spmm(csr, b).result(300)
        server.metrics.reset_cache_baseline()
        elapsed = _drive(server, matrices, b, REQUESTS)
        snap = server.snapshot()
        cluster = server.scheduler.stats_snapshot()
    return {
        "hosts": hosts,
        "rps": REQUESTS / elapsed,
        "p50_ms": snap.latency_p50_s * 1e3,
        "p95_ms": snap.latency_p95_s * 1e3,
        "tasks_per_host": {
            host_id: entry["tasks_sent"] for host_id, entry in cluster["hosts"].items()
        },
        "bytes_sent": cluster["bytes_sent"],
        "bytes_received": cluster["bytes_received"],
        "host_deaths": cluster["host_deaths"],
    }


def _measure_affinity(matrices, b) -> dict:
    """Repeat-matrix workload: remote caches should hit on every repeat."""
    with Server(backend="cluster", hosts=2, device="rtx4090") as server:
        for _ in range(AFFINITY_REQUESTS):
            for csr in matrices:
                server.submit_spmm(csr, b).result(300)
        cache = server.scheduler.metrics.remote_cache_stats()
        cluster = server.scheduler.stats_snapshot()
    return {
        "requests": AFFINITY_REQUESTS * len(matrices),
        "remote_hits": cache.hits,
        "remote_misses": cache.misses,
        "remote_hit_rate": cache.hit_rate,
        "tasks_per_host": {
            host_id: entry["tasks_sent"] for host_id, entry in cluster["hosts"].items()
        },
    }


def _measure_pushpin(matrices, b) -> dict:
    """Repeat workload over v3 push/pin vs. v2-capped re-shipping.

    "Matrix bytes" is everything that carries operand payloads head→worker:
    task frames plus (on v3) ``store_put`` frames, read from the split
    ``bytes_by_frame_type`` accounting.  Both runs must agree bit-exactly —
    the saving may never cost numerics.
    """
    runs = {}
    outputs = {}
    for label, options in (("v3", {}), ("v2", {"worker_protocol_version": 2})):
        with Server(
            backend="cluster", hosts=2, device="rtx4090", cluster_options=options
        ) as server:
            outs = []
            for _ in range(PUSHPIN_REQUESTS):
                for csr in matrices:
                    outs.append(server.submit_spmm(csr, b).result(300).values)
            cluster = server.scheduler.stats_snapshot()
        requests = PUSHPIN_REQUESTS * len(matrices)
        by_type = cluster["bytes_by_frame_type"]
        matrix_bytes = by_type.get("task", {}).get("sent", 0) + by_type.get(
            "store_put", {}
        ).get("sent", 0)
        outputs[label] = outs
        runs[label] = {
            "requests": requests,
            "matrix_bytes_sent": matrix_bytes,
            "matrix_bytes_per_request": matrix_bytes / requests,
            "store_puts": cluster["store_puts"],
            "store_hits": cluster["store_hits"],
            "store_misses": cluster["store_misses"],
            "bytes_saved": cluster["bytes_saved"],
            "task_failures": cluster["task_failures"],
        }
    for v3_out, v2_out in zip(outputs["v3"], outputs["v2"]):
        np.testing.assert_array_equal(v3_out, v2_out)
    return {
        **{label: run for label, run in runs.items()},
        "savings": (
            runs["v2"]["matrix_bytes_per_request"]
            / max(1e-9, runs["v3"]["matrix_bytes_per_request"])
        ),
    }


def run_cluster_scaling() -> dict:
    matrices = _balanced_matrices()
    b = np.random.default_rng(11).standard_normal((NUM_NODES, SPMM_WIDTH)).astype(np.float32)
    single = _measure(1, matrices, b)
    double = _measure(2, matrices, b)
    # One matrix per affinity bucket (_balanced_matrices lays the buckets
    # out contiguously), so the repeat workload exercises *both* hosts'
    # caches — a router that dumped everything on one host would fail the
    # gate rather than hide behind a single warm cache.
    affinity = _measure_affinity(matrices[::MATRICES_PER_HOST], b)
    pushpin = _measure_pushpin(matrices[::MATRICES_PER_HOST], b)
    report = {
        "config": {
            "num_nodes": NUM_NODES,
            "avg_row_length": AVG_ROW_LENGTH,
            "spmm_width": SPMM_WIDTH,
            "clients": CLIENTS,
            "requests": REQUESTS,
            "cpus": os.cpu_count(),
        },
        "single_host": single,
        "two_hosts": double,
        "scaling": double["rps"] / single["rps"],
        "affinity": affinity,
        "pushpin": pushpin,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def _emit(report: dict) -> None:
    rows = [
        [
            f"{r['hosts']} host(s)",
            r["rps"],
            r["p50_ms"],
            r["p95_ms"],
            " / ".join(str(n) for n in r["tasks_per_host"].values()) or "-",
        ]
        for r in (report["single_host"], report["two_hosts"])
    ]
    rows.append(["scaling (2 / 1)", report["scaling"], 0.0, 0.0, "-"])
    rows.append(
        [
            "affinity hit rate",
            report["affinity"]["remote_hit_rate"],
            0.0,
            0.0,
            f"{report['affinity']['remote_hits']}h/{report['affinity']['remote_misses']}m",
        ]
    )
    pushpin = report["pushpin"]
    rows.append(
        [
            "push/pin savings (v2 / v3)",
            pushpin["savings"],
            0.0,
            0.0,
            f"{pushpin['v3']['store_puts']}p/{pushpin['v3']['store_hits']}h "
            f"({pushpin['v3']['matrix_bytes_per_request'] / 1e3:.0f} vs "
            f"{pushpin['v2']['matrix_bytes_per_request'] / 1e3:.0f} kB/req)",
        ]
    )
    try:
        from bench_common import emit_table

        emit_table(
            "cluster_scaling",
            ["Configuration", "Requests/s | ratio", "p50 (ms)", "p95 (ms)", "Tasks per host"],
            rows,
            title="repro.cluster closed-loop throughput: SpMM stream over "
            f"{2 * MATRICES_PER_HOST} matrices, {CLIENTS} clients, {REQUESTS} requests",
        )
    except ImportError:  # standalone without the harness on sys.path
        for row in rows:
            print(f"{row[0]:>20}: {row[1]:8.2f}  (p50 {row[2]:.1f} ms, p95 {row[3]:.1f} ms, {row[4]})")
    print(f"[cluster scaling JSON written to {RESULTS_JSON}]")


def _check(report: dict) -> None:
    affinity = report["affinity"]
    assert affinity["remote_hit_rate"] > MIN_AFFINITY_HIT_RATE, (
        f"cache-affinity routing regressed: remote hit rate "
        f"{affinity['remote_hit_rate']:.3f} <= {MIN_AFFINITY_HIT_RATE} on a "
        f"repeat-matrix workload ({affinity['remote_hits']} hits / "
        f"{affinity['remote_misses']} misses)"
    )
    pushpin = report["pushpin"]
    assert pushpin["v3"]["store_hits"] > 0, "push/pin never hit the ledger"
    assert pushpin["v3"]["task_failures"] == 0 and pushpin["v2"]["task_failures"] == 0
    assert pushpin["savings"] >= MIN_PUSHPIN_SAVINGS, (
        f"push/pin savings regressed: v3 ships "
        f"{pushpin['v3']['matrix_bytes_per_request']:.0f} matrix bytes/request "
        f"vs {pushpin['v2']['matrix_bytes_per_request']:.0f} on v2 — "
        f"{pushpin['savings']:.1f}x < {MIN_PUSHPIN_SAVINGS}x"
    )
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(f"SKIP scaling gate: {cpus} CPU(s) available, need >= 2")
        return
    assert report["scaling"] >= MIN_SCALING, (
        f"cluster scaling regressed: {report['scaling']:.2f}x < {MIN_SCALING}x "
        f"single-host throughput on {cpus} CPUs"
    )


try:  # the `benchmark` fixture only exists with the plugin installed
    import pytest_benchmark  # noqa: F401

    def test_cluster_scaling(benchmark):
        report = benchmark.pedantic(run_cluster_scaling, rounds=1, iterations=1)
        _emit(report)
        _check(report)

except ImportError:

    def test_cluster_scaling():
        report = run_cluster_scaling()
        _emit(report)
        _check(report)


if __name__ == "__main__":
    result = run_cluster_scaling()
    _emit(result)
    _check(result)
    print("OK: cluster scaling benchmark complete")
