"""Table 8 — GCN accuracy under FP32 (DGL/PyG-style), TF32 and FP16 training.

The paper trains a 5-layer GCN for 300 epochs on five datasets and shows no
accuracy loss from the tensor-core precisions.  The stand-in datasets are
smaller and are trained for fewer epochs so the whole table regenerates in
well under a minute, but the comparison (FP16/TF32 vs FP32 on identical
data and initialisation) is the same.
"""

import pytest

from bench_common import emit_table
from repro.gnn import make_dataset
from repro.gnn.data import TABLE8_DATASETS
from repro.gnn.train import train_gcn_accuracy

EPOCHS = 60
HIDDEN = 32
LAYERS = 3
BACKENDS = (
    ("PyG FP32", "pyg"),
    ("DGL FP32", "dgl"),
    ("FlashSparse FP16", "flashsparse-fp16"),
    ("FlashSparse TF32", "flashsparse-tf32"),
)


def run_table8():
    """Test accuracy per dataset and training precision."""
    rows = []
    accuracies = {}
    for key in TABLE8_DATASETS:
        dataset = make_dataset(key)
        row = [dataset.name]
        for label, backend in BACKENDS:
            result = train_gcn_accuracy(
                dataset, backend, epochs=EPOCHS, hidden=HIDDEN, num_layers=LAYERS, seed=0
            )
            accuracies[(key, label)] = result.test_accuracy
            row.append(100.0 * result.test_accuracy)
        rows.append(row)
    return rows, accuracies


@pytest.mark.paper_experiment("Table 8")
def test_table08_gcn_accuracy(benchmark):
    rows, accuracies = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    emit_table(
        "table08_accuracy",
        ["Dataset"] + [label for label, _ in BACKENDS],
        rows,
        title="Table 8 reproduction: GCN test accuracy (%) by training precision",
    )
    # The paper's claim: TF32/FP16 match FP32 accuracy (no loss).  Allow a
    # small tolerance for run-to-run noise on the synthetic datasets.
    for key in TABLE8_DATASETS:
        fp32 = accuracies[(key, "DGL FP32")]
        for label in ("FlashSparse FP16", "FlashSparse TF32"):
            assert abs(accuracies[(key, label)] - fp32) <= 0.06, (key, label)
        assert accuracies[(key, "FlashSparse FP16")] >= 0.5
