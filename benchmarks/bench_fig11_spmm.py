"""Figure 11 — SpMM performance vs all baselines on H100 and RTX 4090.

The paper reports (a)(c) the distribution of per-matrix speedups normalised
to cuSPARSE for N in {128, 256}, split into "small" and "large" matrices, and
(b)(d) the measured GFLOPS of all systems across the 515-matrix collection.
This benchmark regenerates both views on the synthetic collection using the
cost models + performance model.
"""

import pytest

from bench_common import (
    DEVICES,
    baseline_spmm_time,
    emit_table,
    evaluation_collection,
    flash_spmm_time,
    spmm_gflops,
)
from repro.baselines import KERNEL_BASELINES
from repro.perfmodel import geometric_mean

N_VALUES = (128, 256)
SYSTEMS = ("FlashSparse-FP16", "FlashSparse-TF32") + tuple(KERNEL_BASELINES)


def _system_time(system: str, matrix, n_dense: int, device) -> float:
    if system == "FlashSparse-FP16":
        return flash_spmm_time(matrix, n_dense, device, precision="fp16")
    if system == "FlashSparse-TF32":
        return flash_spmm_time(matrix, n_dense, device, precision="tf32")
    return baseline_spmm_time(system, matrix, n_dense, device)


def run_figure11():
    """Median speedup over cuSPARSE and geomean GFLOPS per system/device/N/group."""
    cases = evaluation_collection()
    summary_rows = []
    per_matrix: dict[tuple, list] = {}
    for device_name, device in DEVICES.items():
        for n_dense in N_VALUES:
            times = {}
            for case in cases:
                times[case.name] = {
                    system: _system_time(system, case.matrix, n_dense, device) for system in SYSTEMS
                }
            for group in ("small", "large"):
                group_cases = [c for c in cases if c.size_group == group]
                if not group_cases:
                    continue
                for system in SYSTEMS:
                    speedups = [
                        times[c.name]["cuSPARSE"] / times[c.name][system] for c in group_cases
                    ]
                    gfl = [
                        spmm_gflops(c.matrix, times[c.name][system], n_dense) for c in group_cases
                    ]
                    key = (device_name, n_dense, group, system)
                    per_matrix[key] = speedups
                    speedups_sorted = sorted(speedups)
                    median = speedups_sorted[len(speedups_sorted) // 2]
                    summary_rows.append(
                        [
                            device_name,
                            n_dense,
                            group,
                            system,
                            median,
                            geometric_mean(speedups),
                            geometric_mean(gfl),
                        ]
                    )
    return summary_rows, per_matrix


@pytest.mark.paper_experiment("Figure 11")
def test_fig11_spmm_performance(benchmark):
    summary_rows, per_matrix = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    emit_table(
        "fig11_spmm",
        ["Device", "N", "Group", "System", "Median speedup vs cuSPARSE", "Geomean speedup", "Geomean GFLOPS"],
        summary_rows,
        title="Figure 11 reproduction: SpMM speedups (vs cuSPARSE) and throughput",
    )
    # Shape checks mirroring the paper's claims:
    by_key = {(r[0], r[1], r[2], r[3]): r for r in summary_rows}
    for device in DEVICES:
        for n in N_VALUES:
            for group in ("small", "large"):
                flash = by_key[(device, n, group, "FlashSparse-FP16")]
                # (1) FlashSparse's median speedup over cuSPARSE beats every baseline's.
                for baseline in KERNEL_BASELINES:
                    if baseline == "cuSPARSE":
                        continue
                    assert flash[4] >= by_key[(device, n, group, baseline)][4]
                # (2) FlashSparse achieves the highest geomean throughput.
                for system in SYSTEMS[2:]:
                    assert flash[6] >= by_key[(device, n, group, system)][6]
                # (3) FP16 is at least as fast as TF32 FlashSparse.
                assert flash[6] >= by_key[(device, n, group, "FlashSparse-TF32")][6] * 0.99
